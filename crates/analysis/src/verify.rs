//! Verification of dead-code findings against the symbolic engine.
//!
//! `SP001`/`SP002` are *checkable* claims, and this module checks them:
//!
//! * [`dead_gate_check`] removes every `SP001`-flagged instruction and
//!   asserts the symbolic initialization is **identical** — same
//!   measurement matrix, same detector rows, same observable rows,
//!   symbol for symbol. (Dead gates allocate no symbols and, by the
//!   liveness criterion, change no collapse outcome, so the symbol
//!   numbering of the stripped circuit lines up with the original.)
//! * [`dead_noise_check`] replays the symbol table's allocation order
//!   against the circuit's flattened noise sites to recover which symbol
//!   ids each flagged channel introduced, then asserts none of those ids
//!   appears in any detector or observable row.
//!
//! Both run over the fixture corpus and the built-in circuit generators
//! in the test suite; they are `pub` so downstream tooling can gate on
//! them too.

use std::collections::HashSet;
use std::mem::discriminant;

use symphase_bitmat::BitVec;
use symphase_circuit::{Block, Circuit, Gate, Instruction, NoiseChannel, PauliKind};
use symphase_core::{SymPhaseSampler, SymbolGroup, SymbolId, SymbolTable};

use crate::rewrite::{absolute_flips, FlipSite};
use crate::{lint, symbolic, walk_flat};

/// Checks every `SP001` finding by removal: the stripped circuit must
/// produce byte-identical symbolic matrices.
///
/// # Errors
///
/// Returns a description of the first mismatch — which means the
/// liveness pass flagged a gate that *does* influence an output.
pub fn dead_gate_check(circuit: &Circuit) -> Result<(), String> {
    let flagged: HashSet<Vec<usize>> = lint(circuit)
        .into_iter()
        .filter(|d| d.code == "SP001")
        .map(|d| d.path)
        .collect();
    if flagged.is_empty() {
        return Ok(());
    }
    let stripped = strip_paths(circuit, &flagged)?;
    let original = SymPhaseSampler::new(circuit);
    let reduced = SymPhaseSampler::new(&stripped);

    compare_matrices(
        "measurement",
        original.measurement_matrix(),
        reduced.measurement_matrix(),
    )?;
    compare_matrices(
        "detector",
        original.detector_rows(),
        reduced.detector_rows(),
    )?;
    compare_matrices(
        "observable",
        original.observable_rows(),
        reduced.observable_rows(),
    )
}

fn compare_matrices(
    what: &str,
    a: &symphase_bitmat::SparseRowMatrix,
    b: &symphase_bitmat::SparseRowMatrix,
) -> Result<(), String> {
    if a.rows() != b.rows() {
        return Err(format!(
            "{what} row count changed after stripping dead gates: {} -> {}",
            a.rows(),
            b.rows()
        ));
    }
    for r in 0..a.rows() {
        if a.row(r).indices() != b.row(r).indices() {
            return Err(format!(
                "{what} row {r} changed after stripping dead gates: {:?} -> {:?}",
                a.row(r).indices(),
                b.row(r).indices()
            ));
        }
    }
    Ok(())
}

/// Checks every `SP002` finding by symbol provenance: the flagged
/// channels' symbol ids must be absent from every detector and
/// observable row.
///
/// # Errors
///
/// Returns a description of the first flagged symbol found in a row.
pub fn dead_noise_check(circuit: &Circuit) -> Result<(), String> {
    let flagged: HashSet<Vec<usize>> = lint(circuit)
        .into_iter()
        .filter(|d| d.code == "SP002")
        .map(|d| d.path)
        .collect();
    if flagged.is_empty() {
        return Ok(());
    }
    let sampler = SymPhaseSampler::new(circuit);

    // Noise symbols are allocated in execution order, one group per
    // channel application; coins interleave but belong to measurements.
    let noise_groups: Vec<&SymbolGroup> = sampler
        .symbol_table()
        .groups()
        .iter()
        .filter(|g| !matches!(g, SymbolGroup::Coin { .. }))
        .collect();

    let mut dead_ids: HashSet<u32> = HashSet::new();
    let mut gi = 0usize;
    let mut misaligned = false;
    let mut path = Vec::new();
    walk_flat(circuit.instructions(), &mut path, &mut |path, ins| {
        let applications = match ins {
            Instruction::Noise { channel, targets } => targets.len() / channel.arity(),
            Instruction::CorrelatedError { .. } => 1,
            _ => 0,
        };
        for _ in 0..applications {
            let Some(group) = noise_groups.get(gi) else {
                misaligned = true;
                return;
            };
            gi += 1;
            if flagged.contains(path) {
                dead_ids.extend(group_ids(group));
            }
        }
    });
    if misaligned || gi != noise_groups.len() {
        return Err(format!(
            "symbol-table replay misaligned: {} noise sites vs {} noise groups",
            gi,
            noise_groups.len()
        ));
    }

    for (what, rows) in [
        ("detector", sampler.detector_rows()),
        ("observable", sampler.observable_rows()),
    ] {
        for r in 0..rows.rows() {
            if let Some(&id) = rows
                .row(r)
                .indices()
                .iter()
                .find(|&&id| dead_ids.contains(&id))
            {
                return Err(format!(
                    "symbol {id} of a channel flagged as dead noise appears in {what} row {r}"
                ));
            }
        }
    }
    Ok(())
}

/// Discharges an `SP015` fault-set claim by fault injection: setting
/// exactly `symbols` (a XOR-combined union of mechanism witnesses) must
/// leave **every detector silent** and flip **exactly**
/// `expected_observables`.
///
/// Two independent proofs run, and both must pass:
///
/// 1. **Symbolic**: every detector row of the sampler must evaluate
///    identically under the clean assignment (`s₀` only) and the injected
///    one (`s₀` plus `symbols`); observable rows must differ exactly at
///    `expected_observables`.
/// 2. **Concrete**: the circuit is rebuilt with each noise site replaced
///    by the explicit Pauli gates its fired symbols realize (the layout
///    the cross-engine fault-injection suite pins: `X`/`Y`/`Z` errors
///    apply their Pauli, `DEPOLARIZE1`/`PAULI_CHANNEL_1` apply `X`^fx
///    `Z`^fz, the two-qubit channels their 4-bit `[xa, za, xb, zb]`
///    pattern, `E`/`ELSE` their Pauli product). The tableau engine's
///    [`reference_sample`](symphase_tableau::reference_sample) of the
///    injected circuit is compared against the clean circuit's through
///    the detector/observable measurement sets.
///
/// A disagreement means the analyzer's distance claim is wrong; the
/// driver withdraws the claim and reports a rollback diagnostic instead.
///
/// # Errors
///
/// Returns a description of the first violated obligation.
pub fn fault_set_check(
    circuit: &Circuit,
    symbols: &[SymbolId],
    expected_observables: &[u32],
) -> Result<(), String> {
    let sampler = SymPhaseSampler::new(circuit);
    let fired: HashSet<SymbolId> = symbols.iter().copied().collect();
    for &s in symbols {
        if s == 0 || s as usize >= sampler.symbol_table().assignment_len() {
            return Err(format!("fault set names unknown symbol {s}"));
        }
    }

    // -- Proof 1: symbolic row evaluation.
    let len = sampler.symbol_table().assignment_len();
    let mut clean = BitVec::zeros(len);
    clean.set(0, true); // the constant term s₀
    let mut injected = clean.clone();
    for &s in symbols {
        injected.set(s as usize, true);
    }
    for r in 0..sampler.detector_rows().rows() {
        let row = sampler.detector_rows().row(r);
        if row.eval(&clean) != row.eval(&injected) {
            return Err(format!(
                "symbolic: detector D{r} fires under the injected fault set"
            ));
        }
    }
    let mut symbolic_obs = Vec::new();
    for r in 0..sampler.observable_rows().rows() {
        let row = sampler.observable_rows().row(r);
        if row.eval(&clean) != row.eval(&injected) {
            symbolic_obs.push(r as u32);
        }
    }
    if symbolic_obs != expected_observables {
        return Err(format!(
            "symbolic: injected fault set flips observables {symbolic_obs:?}, claimed \
             {expected_observables:?}"
        ));
    }

    // -- Proof 2: concrete Pauli injection through the tableau engine.
    let concrete = inject_faults(circuit, &sampler, &fired)?;
    let clean_ref = symphase_tableau::reference_sample(&circuit.flattened());
    let fault_ref = symphase_tableau::reference_sample(&concrete);
    if clean_ref.len() != fault_ref.len() {
        return Err("concrete: injection changed the measurement count".into());
    }
    let (det_sets, obs_sets) = measurement_sets(circuit);
    for (d, set) in det_sets.iter().enumerate() {
        let flipped = set
            .iter()
            .fold(false, |p, &m| p ^ clean_ref.get(m) ^ fault_ref.get(m));
        if flipped {
            return Err(format!(
                "concrete: detector D{d} fires under the injected fault set"
            ));
        }
    }
    let mut concrete_obs = Vec::new();
    for (o, set) in obs_sets.iter().enumerate() {
        let flipped = set
            .iter()
            .fold(false, |p, &m| p ^ clean_ref.get(m) ^ fault_ref.get(m));
        if flipped {
            concrete_obs.push(o as u32);
        }
    }
    if concrete_obs != expected_observables {
        return Err(format!(
            "concrete: injected fault set flips observables {concrete_obs:?}, claimed \
             {expected_observables:?}"
        ));
    }
    Ok(())
}

/// Rebuilds `circuit` flattened, with every noise site replaced by the
/// explicit Pauli gates its fired symbols realize (sites with no fired
/// symbol vanish). Alignment between noise applications and symbol
/// groups follows [`dead_noise_check`]'s replay.
fn inject_faults(
    circuit: &Circuit,
    sampler: &SymPhaseSampler,
    fired: &HashSet<SymbolId>,
) -> Result<Circuit, String> {
    let noise_groups: Vec<&SymbolGroup> = sampler
        .symbol_table()
        .groups()
        .iter()
        .filter(|g| !matches!(g, SymbolGroup::Coin { .. }))
        .collect();
    let mut out = Circuit::new(circuit.num_qubits());
    let mut gi = 0usize;
    let mut err: Option<String> = None;
    let mut path = Vec::new();
    walk_flat(circuit.instructions(), &mut path, &mut |_, ins| {
        if err.is_some() {
            return;
        }
        let mut pauli = |kind: PauliKind, q: u32| {
            let gate = match kind {
                PauliKind::X => Gate::X,
                PauliKind::Y => Gate::Y,
                PauliKind::Z => Gate::Z,
            };
            out.push(Instruction::Gate {
                gate,
                targets: vec![q],
            });
        };
        match ins {
            Instruction::Noise { channel, targets } => {
                for chunk in targets.chunks(channel.arity()) {
                    let Some(group) = noise_groups.get(gi) else {
                        err = Some("symbol-table replay misaligned".into());
                        return;
                    };
                    gi += 1;
                    match (channel, group) {
                        (NoiseChannel::XError(_), SymbolGroup::Bernoulli { id, .. }) => {
                            if fired.contains(id) {
                                pauli(PauliKind::X, chunk[0]);
                            }
                        }
                        (NoiseChannel::YError(_), SymbolGroup::Bernoulli { id, .. }) => {
                            if fired.contains(id) {
                                pauli(PauliKind::Y, chunk[0]);
                            }
                        }
                        (NoiseChannel::ZError(_), SymbolGroup::Bernoulli { id, .. }) => {
                            if fired.contains(id) {
                                pauli(PauliKind::Z, chunk[0]);
                            }
                        }
                        (
                            NoiseChannel::Depolarize1(_),
                            SymbolGroup::Depolarize1 { x_id, z_id, .. },
                        )
                        | (
                            NoiseChannel::PauliChannel1 { .. },
                            SymbolGroup::PauliChannel1 { x_id, z_id, .. },
                        ) => {
                            if fired.contains(x_id) {
                                pauli(PauliKind::X, chunk[0]);
                            }
                            if fired.contains(z_id) {
                                pauli(PauliKind::Z, chunk[0]);
                            }
                        }
                        (NoiseChannel::Depolarize2(_), SymbolGroup::Depolarize2 { ids, .. })
                        | (
                            NoiseChannel::PauliChannel2 { .. },
                            SymbolGroup::PauliChannel2 { ids, .. },
                        ) => {
                            // `[xa, za, xb, zb]`, the pinned channel layout.
                            for (j, id) in ids.iter().enumerate() {
                                if fired.contains(id) {
                                    pauli(
                                        if j % 2 == 0 {
                                            PauliKind::X
                                        } else {
                                            PauliKind::Z
                                        },
                                        chunk[j / 2],
                                    );
                                }
                            }
                        }
                        _ => {
                            err = Some(format!(
                                "channel/symbol-group mismatch at noise site {gi}: {channel:?} \
                                 vs {group:?}"
                            ));
                        }
                    }
                }
            }
            Instruction::CorrelatedError { product, .. } => {
                let Some(group) = noise_groups.get(gi) else {
                    err = Some("symbol-table replay misaligned".into());
                    return;
                };
                gi += 1;
                let SymbolGroup::Correlated { id, .. } = group else {
                    err = Some("E/ELSE site not aligned with a Correlated group".into());
                    return;
                };
                if fired.contains(id) {
                    for &(kind, q) in product {
                        pauli(kind, q);
                    }
                }
            }
            ins => out.push(ins.clone()),
        }
    });
    if let Some(err) = err {
        return Err(err);
    }
    if gi != noise_groups.len() {
        return Err(format!(
            "symbol-table replay misaligned: {gi} noise sites vs {} noise groups",
            noise_groups.len()
        ));
    }
    Ok(out)
}

/// Absolute measurement-index sets of every detector and observable,
/// streamed from the flattened circuit (duplicated lookbacks XOR-cancel).
fn measurement_sets(circuit: &Circuit) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let mut dets: Vec<Vec<usize>> = Vec::new();
    let mut obs: Vec<Vec<usize>> = vec![Vec::new(); circuit.num_observables()];
    let mut mcount = 0usize;
    for ins in circuit.flat_instructions() {
        match ins {
            Instruction::Detector { lookbacks, .. } => {
                let mut set: Vec<usize> = Vec::with_capacity(lookbacks.len());
                for &lb in lookbacks {
                    let m = (mcount as i64 + lb) as usize;
                    match set.iter().position(|&x| x == m) {
                        Some(pos) => {
                            set.remove(pos);
                        }
                        None => set.push(m),
                    }
                }
                dets.push(set);
            }
            Instruction::ObservableInclude { index, lookbacks } => {
                let set = &mut obs[*index as usize];
                for &lb in lookbacks {
                    let m = (mcount as i64 + lb) as usize;
                    match set.iter().position(|&x| x == m) {
                        Some(pos) => {
                            set.remove(pos);
                        }
                        None => set.push(m),
                    }
                }
            }
            _ => mcount += ins.measurements_added(),
        }
    }
    (dets, obs)
}

fn group_ids(group: &SymbolGroup) -> Vec<u32> {
    match group {
        SymbolGroup::Coin { id }
        | SymbolGroup::Bernoulli { id, .. }
        | SymbolGroup::Correlated { id, .. } => vec![*id],
        SymbolGroup::Depolarize1 { x_id, z_id, .. }
        | SymbolGroup::PauliChannel1 { x_id, z_id, .. } => vec![*x_id, *z_id],
        SymbolGroup::Depolarize2 { ids, .. } | SymbolGroup::PauliChannel2 { ids, .. } => {
            ids.to_vec()
        }
    }
}

/// Translation validation for the optimizer's rewrite passes: proves
/// `rewritten` equivalent to `original` by comparing their symbolic
/// initializations.
///
/// The obligation, phrased over the sparse symbolic matrices:
///
/// * **detector and observable rows** must be identical symbol for
///   symbol (after renumbering for stripped noise groups — and a
///   stripped group's symbols must not appear in any row, or the strip
///   was unsound);
/// * **measurement rows** must be identical after dropping stripped
///   symbols and toggling the constant term (`s₀`, id 0) at exactly the
///   records in `flips`;
/// * the **symbol group sequences** must align one-to-one (same channel
///   kinds, same coin positions) once stripped groups are skipped —
///   which also proves that no pass changed any measurement's
///   determinism.
///
/// Oversized circuits are clamped (both sides, identically) via the
/// [`crate::symbolic`] trip-count clamp before replay; `flips` are
/// structural [`FlipSite`]s, so they survive clamping. Returns whether
/// clamping was applied.
///
/// # Errors
///
/// Returns a human-readable description of the first failed obligation —
/// the driver treats any error as "roll the rewrite back".
pub fn rewrite_equiv_check(
    original: &Circuit,
    rewritten: &Circuit,
    flips: &[FlipSite],
    removed_noise_paths: &HashSet<Vec<usize>>,
) -> Result<bool, String> {
    let clamped = symbolic::work(original) > symbolic::MAX_SYMBOLIC_WORK
        || symbolic::work(rewritten) > symbolic::MAX_SYMBOLIC_WORK;
    let (orig_c, rew_c);
    let (orig, rew): (&Circuit, &Circuit) = if clamped {
        orig_c = symbolic::clamp_circuit(original)
            .ok_or("cannot clamp the original circuit for replay (after-loop lookback)")?;
        rew_c = symbolic::clamp_circuit(rewritten)
            .ok_or("cannot clamp the rewritten circuit for replay (after-loop lookback)")?;
        if symbolic::work(&orig_c) > symbolic::MAX_SYMBOLIC_WORK
            || symbolic::work(&rew_c) > symbolic::MAX_SYMBOLIC_WORK
        {
            return Err("circuit too large to translation-validate even after clamping".into());
        }
        (&orig_c, &rew_c)
    } else {
        (original, rewritten)
    };

    let a = SymPhaseSampler::new(orig);
    let b = SymPhaseSampler::new(rew);
    if a.num_measurements() != b.num_measurements() {
        return Err(format!(
            "rewrite changed the measurement count: {} -> {}",
            a.num_measurements(),
            b.num_measurements()
        ));
    }
    if a.num_detectors() != b.num_detectors() || a.num_observables() != b.num_observables() {
        return Err("rewrite changed the detector/observable count".into());
    }

    let map = symbol_map(
        orig,
        a.symbol_table(),
        b.symbol_table(),
        removed_noise_paths,
    )?;
    let flip_rows: HashSet<usize> = absolute_flips(orig, flips)?.into_iter().collect();

    compare_remapped(
        "measurement",
        a.measurement_matrix(),
        b.measurement_matrix(),
        &map,
        true,
        Some(&flip_rows),
    )?;
    compare_remapped(
        "detector",
        a.detector_rows(),
        b.detector_rows(),
        &map,
        false,
        None,
    )?;
    compare_remapped(
        "observable",
        a.observable_rows(),
        b.observable_rows(),
        &map,
        false,
        None,
    )?;
    Ok(clamped)
}

/// Maps original symbol ids to rewritten ones by replaying both symbol
/// tables' allocation orders in lockstep, skipping the groups of noise
/// sites at `removed_paths`. `None` marks a stripped symbol. The map is
/// monotone, so remapping preserves sparse-row index order.
fn symbol_map(
    original: &Circuit,
    orig_table: &SymbolTable,
    rew_table: &SymbolTable,
    removed_paths: &HashSet<Vec<usize>>,
) -> Result<Vec<Option<u32>>, String> {
    // One flag per noise application, flattened execution order —
    // aligned with the non-coin groups of the original table.
    let mut removed_app: Vec<bool> = Vec::new();
    let mut path = Vec::new();
    walk_flat(original.instructions(), &mut path, &mut |path, ins| {
        let applications = match ins {
            Instruction::Noise { channel, targets } => targets.len() / channel.arity(),
            Instruction::CorrelatedError { .. } => 1,
            _ => 0,
        };
        for _ in 0..applications {
            removed_app.push(removed_paths.contains(path));
        }
    });

    let mut map: Vec<Option<u32>> = vec![None; orig_table.assignment_len()];
    // Symbol 0 is the constant term s₀ in both tables.
    if let Some(slot) = map.get_mut(0) {
        *slot = Some(0);
    }
    let mut rew_groups = rew_table.groups().iter();
    let mut app = 0usize;
    for group in orig_table.groups() {
        let removed = if matches!(group, SymbolGroup::Coin { .. }) {
            false
        } else {
            let flag = *removed_app
                .get(app)
                .ok_or("symbol replay misaligned: more noise groups than noise applications")?;
            app += 1;
            flag
        };
        if removed {
            continue;
        }
        let counterpart = rew_groups
            .next()
            .ok_or("rewritten circuit allocates fewer symbol groups than expected")?;
        if discriminant(group) != discriminant(counterpart) {
            return Err(format!(
                "symbol group kind changed under rewrite: {group:?} -> {counterpart:?}"
            ));
        }
        let (from, to) = (group_ids(group), group_ids(counterpart));
        if from.len() != to.len() {
            return Err("symbol group width changed under rewrite".into());
        }
        for (o, n) in from.into_iter().zip(to) {
            map[o as usize] = Some(n);
        }
    }
    if rew_groups.next().is_some() {
        return Err("rewritten circuit allocates extra symbol groups".into());
    }
    if app != removed_app.len() {
        return Err(format!(
            "symbol replay misaligned: {} noise applications vs {} noise groups",
            removed_app.len(),
            app
        ));
    }
    Ok(map)
}

/// Compares two sparse matrices under the symbol renumbering. With
/// `allow_drop`, stripped (unmapped) symbols vanish from the original
/// side; without it their presence is an error. Rows in `flip_rows` have
/// their constant term (id 0) toggled before comparison.
fn compare_remapped(
    what: &str,
    a: &symphase_bitmat::SparseRowMatrix,
    b: &symphase_bitmat::SparseRowMatrix,
    map: &[Option<u32>],
    allow_drop: bool,
    flip_rows: Option<&HashSet<usize>>,
) -> Result<(), String> {
    if a.rows() != b.rows() {
        return Err(format!(
            "{what} row count changed under rewrite: {} -> {}",
            a.rows(),
            b.rows()
        ));
    }
    for r in 0..a.rows() {
        let mut mapped: Vec<u32> = Vec::with_capacity(a.row(r).indices().len());
        for &id in a.row(r).indices() {
            match map.get(id as usize).copied().flatten() {
                Some(n) => mapped.push(n),
                None if allow_drop => {}
                None => {
                    return Err(format!(
                        "symbol {id} of a stripped noise channel appears in {what} row {r}"
                    ))
                }
            }
        }
        if flip_rows.is_some_and(|rows| rows.contains(&r)) {
            match mapped.iter().position(|&i| i == 0) {
                Some(pos) => {
                    mapped.remove(pos);
                }
                None => mapped.push(0),
            }
        }
        mapped.sort_unstable();
        let mut expected: Vec<u32> = b.row(r).indices().to_vec();
        expected.sort_unstable();
        if mapped != expected {
            return Err(format!(
                "{what} row {r} not equivalent under rewrite: {mapped:?} (remapped original) \
                 vs {expected:?}"
            ));
        }
    }
    Ok(())
}

/// Rebuilds `circuit` without the instructions at `paths` (structural
/// paths as reported in [`crate::Diagnostic::path`]).
///
/// # Errors
///
/// Returns the validation failure if the stripped circuit no longer
/// validates — e.g. removing a chain head would orphan an
/// `ELSE_CORRELATED_ERROR` (dead *gates* can never cause this; the
/// error path exists for arbitrary caller-supplied paths).
pub fn strip_paths(circuit: &Circuit, paths: &HashSet<Vec<usize>>) -> Result<Circuit, String> {
    let mut out = Circuit::new(circuit.num_qubits());
    let mut prefix = Vec::new();
    for ins in strip_block(circuit.instructions(), &mut prefix, paths)? {
        out.try_push(ins)?;
    }
    Ok(out)
}

fn strip_block(
    instrs: &[Instruction],
    prefix: &mut Vec<usize>,
    paths: &HashSet<Vec<usize>>,
) -> Result<Vec<Instruction>, String> {
    let mut kept = Vec::new();
    for (i, ins) in instrs.iter().enumerate() {
        prefix.push(i);
        if !paths.contains(prefix) {
            if let Instruction::Repeat { count, body } = ins {
                let mut new_body = Block::new();
                for inner in strip_block(body.instructions(), prefix, paths)? {
                    new_body.try_push(inner)?;
                }
                kept.push(Instruction::Repeat {
                    count: *count,
                    body: Box::new(new_body),
                });
            } else {
                kept.push(ins.clone());
            }
        }
        prefix.pop();
    }
    Ok(kept)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_nested_nodes() {
        let circuit = Circuit::parse("H 0\nREPEAT 2 {\n H 0\n M 0\n}\n").unwrap();
        let mut paths = HashSet::new();
        paths.insert(vec![0]);
        paths.insert(vec![1, 0]);
        let stripped = strip_paths(&circuit, &paths).unwrap();
        assert_eq!(
            Circuit::parse("REPEAT 2 {\n M 0\n}\n")
                .unwrap()
                .instructions(),
            stripped.instructions(),
        );
    }

    #[test]
    fn checks_pass_on_flagging_circuits() {
        // Dead gate after the last measurement + dead noise past the
        // last detector reference.
        let text = "X_ERROR(0.1) 0\nM 0\nDETECTOR rec[-1]\nZ_ERROR(0.2) 0\nM 0\nS 0\n";
        let circuit = Circuit::parse(text).unwrap();
        let diags = lint(&circuit);
        assert!(diags.iter().any(|d| d.code == "SP001"), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == "SP002"), "{diags:?}");
        dead_gate_check(&circuit).unwrap();
        dead_noise_check(&circuit).unwrap();
    }
}
