//! Verification of dead-code findings against the symbolic engine.
//!
//! `SP001`/`SP002` are *checkable* claims, and this module checks them:
//!
//! * [`dead_gate_check`] removes every `SP001`-flagged instruction and
//!   asserts the symbolic initialization is **identical** — same
//!   measurement matrix, same detector rows, same observable rows,
//!   symbol for symbol. (Dead gates allocate no symbols and, by the
//!   liveness criterion, change no collapse outcome, so the symbol
//!   numbering of the stripped circuit lines up with the original.)
//! * [`dead_noise_check`] replays the symbol table's allocation order
//!   against the circuit's flattened noise sites to recover which symbol
//!   ids each flagged channel introduced, then asserts none of those ids
//!   appears in any detector or observable row.
//!
//! Both run over the fixture corpus and the built-in circuit generators
//! in the test suite; they are `pub` so downstream tooling can gate on
//! them too.

use std::collections::HashSet;

use symphase_circuit::{Block, Circuit, Instruction};
use symphase_core::{SymPhaseSampler, SymbolGroup};

use crate::{lint, walk_flat};

/// Checks every `SP001` finding by removal: the stripped circuit must
/// produce byte-identical symbolic matrices.
///
/// # Errors
///
/// Returns a description of the first mismatch — which means the
/// liveness pass flagged a gate that *does* influence an output.
pub fn dead_gate_check(circuit: &Circuit) -> Result<(), String> {
    let flagged: HashSet<Vec<usize>> = lint(circuit)
        .into_iter()
        .filter(|d| d.code == "SP001")
        .map(|d| d.path)
        .collect();
    if flagged.is_empty() {
        return Ok(());
    }
    let stripped = strip_paths(circuit, &flagged)?;
    let original = SymPhaseSampler::new(circuit);
    let reduced = SymPhaseSampler::new(&stripped);

    compare_matrices(
        "measurement",
        original.measurement_matrix(),
        reduced.measurement_matrix(),
    )?;
    compare_matrices(
        "detector",
        original.detector_rows(),
        reduced.detector_rows(),
    )?;
    compare_matrices(
        "observable",
        original.observable_rows(),
        reduced.observable_rows(),
    )
}

fn compare_matrices(
    what: &str,
    a: &symphase_bitmat::SparseRowMatrix,
    b: &symphase_bitmat::SparseRowMatrix,
) -> Result<(), String> {
    if a.rows() != b.rows() {
        return Err(format!(
            "{what} row count changed after stripping dead gates: {} -> {}",
            a.rows(),
            b.rows()
        ));
    }
    for r in 0..a.rows() {
        if a.row(r).indices() != b.row(r).indices() {
            return Err(format!(
                "{what} row {r} changed after stripping dead gates: {:?} -> {:?}",
                a.row(r).indices(),
                b.row(r).indices()
            ));
        }
    }
    Ok(())
}

/// Checks every `SP002` finding by symbol provenance: the flagged
/// channels' symbol ids must be absent from every detector and
/// observable row.
///
/// # Errors
///
/// Returns a description of the first flagged symbol found in a row.
pub fn dead_noise_check(circuit: &Circuit) -> Result<(), String> {
    let flagged: HashSet<Vec<usize>> = lint(circuit)
        .into_iter()
        .filter(|d| d.code == "SP002")
        .map(|d| d.path)
        .collect();
    if flagged.is_empty() {
        return Ok(());
    }
    let sampler = SymPhaseSampler::new(circuit);

    // Noise symbols are allocated in execution order, one group per
    // channel application; coins interleave but belong to measurements.
    let noise_groups: Vec<&SymbolGroup> = sampler
        .symbol_table()
        .groups()
        .iter()
        .filter(|g| !matches!(g, SymbolGroup::Coin { .. }))
        .collect();

    let mut dead_ids: HashSet<u32> = HashSet::new();
    let mut gi = 0usize;
    let mut misaligned = false;
    let mut path = Vec::new();
    walk_flat(circuit.instructions(), &mut path, &mut |path, ins| {
        let applications = match ins {
            Instruction::Noise { channel, targets } => targets.len() / channel.arity(),
            Instruction::CorrelatedError { .. } => 1,
            _ => 0,
        };
        for _ in 0..applications {
            let Some(group) = noise_groups.get(gi) else {
                misaligned = true;
                return;
            };
            gi += 1;
            if flagged.contains(path) {
                dead_ids.extend(group_ids(group));
            }
        }
    });
    if misaligned || gi != noise_groups.len() {
        return Err(format!(
            "symbol-table replay misaligned: {} noise sites vs {} noise groups",
            gi,
            noise_groups.len()
        ));
    }

    for (what, rows) in [
        ("detector", sampler.detector_rows()),
        ("observable", sampler.observable_rows()),
    ] {
        for r in 0..rows.rows() {
            if let Some(&id) = rows
                .row(r)
                .indices()
                .iter()
                .find(|&&id| dead_ids.contains(&id))
            {
                return Err(format!(
                    "symbol {id} of a channel flagged as dead noise appears in {what} row {r}"
                ));
            }
        }
    }
    Ok(())
}

fn group_ids(group: &SymbolGroup) -> Vec<u32> {
    match group {
        SymbolGroup::Coin { id }
        | SymbolGroup::Bernoulli { id, .. }
        | SymbolGroup::Correlated { id, .. } => vec![*id],
        SymbolGroup::Depolarize1 { x_id, z_id, .. }
        | SymbolGroup::PauliChannel1 { x_id, z_id, .. } => vec![*x_id, *z_id],
        SymbolGroup::Depolarize2 { ids, .. } | SymbolGroup::PauliChannel2 { ids, .. } => {
            ids.to_vec()
        }
    }
}

/// Rebuilds `circuit` without the instructions at `paths` (structural
/// paths as reported in [`crate::Diagnostic::path`]).
///
/// # Errors
///
/// Returns the validation failure if the stripped circuit no longer
/// validates — e.g. removing a chain head would orphan an
/// `ELSE_CORRELATED_ERROR` (dead *gates* can never cause this; the
/// error path exists for arbitrary caller-supplied paths).
pub fn strip_paths(circuit: &Circuit, paths: &HashSet<Vec<usize>>) -> Result<Circuit, String> {
    let mut out = Circuit::new(circuit.num_qubits());
    let mut prefix = Vec::new();
    for ins in strip_block(circuit.instructions(), &mut prefix, paths)? {
        out.try_push(ins)?;
    }
    Ok(out)
}

fn strip_block(
    instrs: &[Instruction],
    prefix: &mut Vec<usize>,
    paths: &HashSet<Vec<usize>>,
) -> Result<Vec<Instruction>, String> {
    let mut kept = Vec::new();
    for (i, ins) in instrs.iter().enumerate() {
        prefix.push(i);
        if !paths.contains(prefix) {
            if let Instruction::Repeat { count, body } = ins {
                let mut new_body = Block::new();
                for inner in strip_block(body.instructions(), prefix, paths)? {
                    new_body.try_push(inner)?;
                }
                kept.push(Instruction::Repeat {
                    count: *count,
                    body: Box::new(new_body),
                });
            } else {
                kept.push(ins.clone());
            }
        }
        prefix.pop();
    }
    Ok(kept)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_nested_nodes() {
        let circuit = Circuit::parse("H 0\nREPEAT 2 {\n H 0\n M 0\n}\n").unwrap();
        let mut paths = HashSet::new();
        paths.insert(vec![0]);
        paths.insert(vec![1, 0]);
        let stripped = strip_paths(&circuit, &paths).unwrap();
        assert_eq!(
            Circuit::parse("REPEAT 2 {\n M 0\n}\n")
                .unwrap()
                .instructions(),
            stripped.instructions(),
        );
    }

    #[test]
    fn checks_pass_on_flagging_circuits() {
        // Dead gate after the last measurement + dead noise past the
        // last detector reference.
        let text = "X_ERROR(0.1) 0\nM 0\nDETECTOR rec[-1]\nZ_ERROR(0.2) 0\nM 0\nS 0\n";
        let circuit = Circuit::parse(text).unwrap();
        let diags = lint(&circuit);
        assert!(diags.iter().any(|d| d.code == "SP001"), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == "SP002"), "{diags:?}");
        dead_gate_check(&circuit).unwrap();
        dead_noise_check(&circuit).unwrap();
    }
}
