//! Bounded minimum-weight undetectable-logical-error search over a
//! [`DetectorErrorModel`] — the analyzer's circuit-distance probe.
//!
//! A set of mechanisms is an *undetectable logical error* when the XOR
//! of its symptoms leaves every detector silent but flips at least one
//! observable. The least number of mechanisms achieving that is an upper
//! bound on the circuit distance, and certifying that no set of ≤ k
//! mechanisms achieves it proves `distance > k`.
//!
//! # Search
//!
//! Weight-layered BFS over states `(syndrome, observable mask)`:
//!
//! * **Starts**: every mechanism that flips an observable. Any solution
//!   set contains one (its total observable mask is nonzero), and the
//!   canonical reordering below lets it go first.
//! * **Expansion**: from a state with nonempty syndrome, only mechanisms
//!   incident to the **lowest active detector** are applied. This is
//!   complete by a parity argument: in a solution set `M`, detector `d`
//!   sees an even number of incident mechanisms; any proper prefix `P`
//!   with `d` active has odd incidence on `d`, so `M \ P` contains
//!   another mechanism incident to `d` — a valid next step. Hence every
//!   solution set has an ordering the BFS walks, and the first solution
//!   found is minimum-weight.
//! * **States that reach an empty syndrome** with a zero mask are
//!   discarded: if a prefix cancels to nothing, the remaining mechanisms
//!   form a smaller solution that another BFS path finds.
//! * **Dedup**: first path to a `(syndrome, mask)` state wins — any
//!   completion of one completes the other at the same weight.
//!
//! The search is capped twice: by `max_weight` (the `distance > k`
//! certificate) and by a node budget (the explicit [`Distance::Clamped`]
//! marker — the same contract as the optimizer's `Verified { clamped }`).

use std::collections::HashMap;

use symphase_core::DetectorErrorModel;

use crate::dem_graph::DemGraph;

/// A concrete undetectable logical error: mechanism indices into the
/// model, and the observables their combination flips.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSet {
    /// Sorted mechanism indices.
    pub mechanisms: Vec<usize>,
    /// Sorted observable indices the set flips (nonempty).
    pub observables: Vec<u32>,
}

impl FaultSet {
    /// Number of mechanisms in the set.
    pub fn weight(&self) -> usize {
        self.mechanisms.len()
    }
}

/// Outcome of the bounded search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Distance {
    /// A minimum-weight undetectable logical error within the cap: the
    /// circuit distance is **exactly** `fault_set.weight()` if the cap
    /// was not binding below it, and at most that weight regardless.
    UpperBound {
        /// The minimum-weight fault set found.
        fault_set: FaultSet,
    },
    /// Exhaustive up to the cap: every mechanism set of weight ≤
    /// `max_weight` either fires a detector or flips no observable.
    AboveWeight {
        /// The searched weight cap.
        max_weight: usize,
    },
    /// The node budget ran out: weights ≤ `completed_weight` are fully
    /// searched (no solution there), heavier ones are unknown.
    Clamped {
        /// Largest exhaustively searched weight.
        completed_weight: usize,
    },
    /// The model flips no observable anywhere — distance is undefined.
    NoObservables,
}

/// Upper bound on visited search states before reporting
/// [`Distance::Clamped`]. Syndromes in memory-experiment models are a few
/// u32s, so this bounds memory at tens of MB and debug-mode time at a few
/// seconds.
pub const DEFAULT_NODE_BUDGET: usize = 400_000;

#[derive(Clone, PartialEq, Eq, Hash)]
struct StateKey {
    syndrome: Vec<u32>,
    mask: u64,
}

struct Node {
    key: StateKey,
    mechanism: usize,
    parent: Option<usize>,
}

/// Searches for a minimum-weight undetectable logical error of at most
/// `max_weight` mechanisms, visiting at most ~`node_budget` states.
///
/// Requires `dem.num_observables() <= 64` (observable sets are tracked
/// as a mask); callers must reject larger models before searching.
pub fn min_weight_logical_error(
    dem: &DetectorErrorModel,
    max_weight: usize,
    node_budget: usize,
) -> Distance {
    let graph = DemGraph::new(dem);
    let errors = dem.errors();
    let masks: Vec<u64> = errors
        .iter()
        .map(|e| e.observables.iter().fold(0u64, |m, &o| m | (1 << o)))
        .collect();
    if masks.iter().all(|&m| m == 0) {
        return Distance::NoObservables;
    }
    if max_weight == 0 {
        return Distance::AboveWeight { max_weight: 0 };
    }

    let mut nodes: Vec<Node> = Vec::new();
    let mut seen: HashMap<StateKey, ()> = HashMap::new();
    let mut frontier: Vec<usize> = Vec::new();

    // Weight-1 layer: each observable-flipping mechanism is a start.
    for (i, e) in errors.iter().enumerate() {
        if masks[i] == 0 {
            continue;
        }
        let key = StateKey {
            syndrome: e.detectors.clone(),
            mask: masks[i],
        };
        if key.syndrome.is_empty() {
            // A single silent, observable-flipping mechanism: distance 1.
            return Distance::UpperBound {
                fault_set: FaultSet {
                    mechanisms: vec![i],
                    observables: e.observables.clone(),
                },
            };
        }
        if seen.insert(key.clone(), ()).is_none() {
            nodes.push(Node {
                key,
                mechanism: i,
                parent: None,
            });
            frontier.push(nodes.len() - 1);
        }
    }

    for weight in 2..=max_weight {
        let mut next: Vec<usize> = Vec::new();
        let mut solution: Option<(StateKey, usize, usize)> = None; // (key, mech, parent)
        'expand: for &ni in &frontier {
            let (syndrome, mask) = {
                let n = &nodes[ni];
                (n.key.syndrome.clone(), n.key.mask)
            };
            let lowest = syndrome[0];
            for &m in graph.incident(lowest) {
                let e = &errors[m];
                let mut new_syndrome = syndrome.clone();
                xor_set(&mut new_syndrome, &e.detectors);
                let new_mask = mask ^ masks[m];
                if new_syndrome.is_empty() {
                    if new_mask != 0 {
                        solution = Some((
                            StateKey {
                                syndrome: new_syndrome,
                                mask: new_mask,
                            },
                            m,
                            ni,
                        ));
                        // Any solution in this layer is minimum-weight;
                        // stop expanding.
                        break 'expand;
                    }
                    continue; // cancelled to nothing: a smaller solution covers it
                }
                let key = StateKey {
                    syndrome: new_syndrome,
                    mask: new_mask,
                };
                if seen.contains_key(&key) {
                    continue;
                }
                seen.insert(key.clone(), ());
                nodes.push(Node {
                    key,
                    mechanism: m,
                    parent: Some(ni),
                });
                next.push(nodes.len() - 1);
                if nodes.len() >= node_budget {
                    return Distance::Clamped {
                        completed_weight: weight - 1,
                    };
                }
            }
        }
        if let Some((key, mechanism, parent)) = solution {
            let mut mechanisms = vec![mechanism];
            let mut at = Some(parent);
            while let Some(ni) = at {
                mechanisms.push(nodes[ni].mechanism);
                at = nodes[ni].parent;
            }
            mechanisms.sort_unstable();
            debug_assert_eq!(mechanisms.len(), weight);
            let observables: Vec<u32> = (0..64).filter(|o| key.mask & (1 << o) != 0).collect();
            return Distance::UpperBound {
                fault_set: FaultSet {
                    mechanisms,
                    observables,
                },
            };
        }
        if next.is_empty() {
            // The whole reachable space is exhausted below the cap.
            return Distance::AboveWeight { max_weight };
        }
        frontier = next;
    }
    Distance::AboveWeight { max_weight }
}

fn xor_set(acc: &mut Vec<u32>, items: &[u32]) {
    for &i in items {
        match acc.binary_search(&i) {
            Ok(pos) => {
                acc.remove(pos);
            }
            Err(pos) => acc.insert(pos, i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphase_core::DetectorErrorModel;

    fn search(text: &str, max_weight: usize) -> Distance {
        let dem = DetectorErrorModel::parse(text).unwrap();
        min_weight_logical_error(&dem, max_weight, DEFAULT_NODE_BUDGET)
    }

    #[test]
    fn single_silent_logical_is_distance_one() {
        let d = search("error(0.1) L0\nerror(0.1) D0 L0\n", 5);
        let Distance::UpperBound { fault_set } = d else {
            panic!("{d:?}");
        };
        assert_eq!(fault_set.weight(), 1);
        assert_eq!(fault_set.observables, vec![0]);
    }

    #[test]
    fn repetition_chain_distance_equals_length() {
        // D0 - D1 - D2 boundary-to-boundary chain: L0 sits on one end;
        // crossing the whole chain needs all 4 mechanisms.
        let text = "error(0.1) D0 L0\nerror(0.1) D0 D1\nerror(0.1) D1 D2\nerror(0.1) D2\n";
        let d = search(text, 5);
        let Distance::UpperBound { fault_set } = d else {
            panic!("{d:?}");
        };
        assert_eq!(fault_set.weight(), 4);
        assert_eq!(fault_set.mechanisms, vec![0, 1, 2, 3]);
        // And the cap certifies distance > 3 when set below.
        assert_eq!(search(text, 3), Distance::AboveWeight { max_weight: 3 });
    }

    #[test]
    fn cancelling_pair_is_not_a_solution() {
        // Two identical-symptom mechanisms XOR to total silence — the
        // observable cancels along with the detector, so no solution.
        let text = "error(0.1) D0 L0\nerror(0.2) D0 L0\n";
        assert_eq!(search(text, 4), Distance::AboveWeight { max_weight: 4 });
    }

    #[test]
    fn opposite_observables_make_weight_two() {
        // Two mechanisms share D0 but only one flips L0.
        let d = search("error(0.1) D0 L0\nerror(0.1) D0\n", 5);
        let Distance::UpperBound { fault_set } = d else {
            panic!("{d:?}");
        };
        assert_eq!(fault_set.mechanisms, vec![0, 1]);
        assert_eq!(fault_set.observables, vec![0]);
    }

    #[test]
    fn no_observables_reported() {
        assert_eq!(search("error(0.1) D0\n", 5), Distance::NoObservables);
    }

    #[test]
    fn node_budget_clamps() {
        // One start state fans out to 15 distinct weight-2 states, which
        // overflows a 10-node budget mid-layer.
        let mut text = String::from("error(0.01) D0 L0\n");
        for b in 1..=15u32 {
            text.push_str(&format!("error(0.01) D0 D{b}\n"));
        }
        let dem = DetectorErrorModel::parse(&text).unwrap();
        let d = min_weight_logical_error(&dem, 6, 10);
        assert!(
            matches!(
                d,
                Distance::Clamped {
                    completed_weight: 1
                }
            ),
            "{d:?}"
        );
    }
}
