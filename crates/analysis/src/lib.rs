//! Static analysis for SymPhase circuits: the library behind
//! `symphase lint`.
//!
//! Three analysis families feed one [`Diagnostic`] stream:
//!
//! * **Tableau-dataflow liveness** ([`liveness`]): a backward pass over
//!   per-qubit Pauli-component masks, propagated through
//!   [`Gate::conjugate`](symphase_circuit::Gate::conjugate), that proves
//!   gates (`SP001`) and noise channels (`SP002`) unable to affect any
//!   measurement, detector, or observable. `REPEAT` bodies are analyzed
//!   once to a join fixpoint, so the pass is O(file) whatever the trip
//!   counts.
//! * **Symbolic constant detection** ([`symbolic`]): reuses the sparse
//!   symbolic initialization to flag detectors whose expression is
//!   constant (`SP003`) and observables that are deterministic (`SP004`).
//! * **Structural lints** ([`structural`]): unused qubits (`SP005`),
//!   probability-zero channels (`SP008`), duplicate detectors (`SP009`),
//!   and shadowed `ELSE_CORRELATED_ERROR` elements (`SP010`).
//!
//! Parse/validation failures surface as error-severity diagnostics
//! (`SP000`, `SP006`, `SP007`) through [`lint_text`] — a valid
//! [`Circuit`] cannot contain them, so they never come out of [`lint`].
//!
//! The dead-code findings are *verified* findings: [`verify`] re-checks
//! them against the symbolic initialization (removing every flagged gate
//! must leave the measurement/detector/observable matrices identical;
//! every flagged noise channel's symbols must be absent from the
//! detector and observable rows), and the test suite runs those checks
//! over the fixture corpus and the built-in generators.

use std::fmt;

use symphase_circuit::{Circuit, Instruction, SourceMap};

pub mod liveness;
pub mod opt;
pub mod rewrite;
pub mod structural;
pub mod symbolic;
pub mod verify;

pub use opt::{
    optimize, optimize_with, OptConfig, OptReport, OptResult, Pass, PassStats, ProofStatus,
    RewriteProof,
};

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but well-formed circuit structure.
    Warning,
    /// The input is not a valid circuit.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`"SP001"`, …); see [`CODES`].
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// 1-based source line, when the finding maps to one. `None` for
    /// circuit-level findings (e.g. an unused qubit) and for circuits
    /// built programmatically rather than parsed.
    pub line: Option<usize>,
    /// Structural path of the offending instruction: indices into nested
    /// instruction lists, outermost first. Empty for circuit-level
    /// findings.
    pub path: Vec<usize>,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// Code-level guidance on how to fix it.
    pub help: &'static str,
}

/// Catalog of every diagnostic code: `(code, slug, help)`.
///
/// `docs/lint.md` documents each entry; the fixture corpus under
/// `tests/lint/` exercises each with a positive and a negative case.
pub const CODES: &[(&str, &str, &str)] = &[
    (
        "SP000",
        "parse-error",
        "fix the syntax error; see docs/formats.md for the accepted grammar",
    ),
    (
        "SP001",
        "dead-gate",
        "remove the gate, or check that the intended qubits are targeted",
    ),
    (
        "SP002",
        "dead-noise",
        "remove the channel, or add detectors covering the qubits it faults",
    ),
    (
        "SP003",
        "vacuous-detector",
        "check the rec[-k] offsets: the detector compares measurements whose symbolic difference is a constant",
    ),
    (
        "SP004",
        "deterministic-observable",
        "check the rec[-k] offsets: no noise or randomness reaches this observable",
    ),
    (
        "SP005",
        "unused-qubit",
        "remove the qubit from QUBIT_COORDS or renumber the remaining qubits contiguously",
    ),
    (
        "SP006",
        "record-out-of-range",
        "reduce the rec[-k] offset or move the instruction after enough measurements",
    ),
    (
        "SP007",
        "repeated-mpp-qubit",
        "merge the factors acting on the qubit into a single Pauli factor",
    ),
    (
        "SP008",
        "zero-probability-channel",
        "remove the channel or give it a nonzero probability",
    ),
    (
        "SP009",
        "duplicate-detector",
        "remove one of the detectors comparing the same measurement set",
    ),
    (
        "SP010",
        "shadowed-else",
        "an earlier element of the E/ELSE chain fires with probability 1, so this element never fires; drop it or lower the earlier probability",
    ),
    (
        "SP011",
        "fusable-clifford-run",
        "adjacent single-qubit Clifford gates compose to a shorter canonical word; fuse them by hand or run `symphase opt`",
    ),
];

/// Short kebab-case name of a diagnostic code.
#[must_use]
pub fn slug(code: &str) -> Option<&'static str> {
    CODES
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|(_, s, _)| *s)
}

/// Whether `code` names a known diagnostic.
#[must_use]
pub fn is_known_code(code: &str) -> bool {
    CODES.iter().any(|(c, _, _)| *c == code)
}

fn help_for(code: &str) -> &'static str {
    CODES
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|(_, _, h)| *h)
        .expect("diagnostic codes come from the catalog")
}

pub(crate) fn diag(code: &'static str, path: &[usize], message: String) -> Diagnostic {
    Diagnostic {
        code,
        severity: Severity::Warning,
        line: None,
        path: path.to_vec(),
        message,
        help: help_for(code),
    }
}

/// Lints a circuit, returning all findings sorted by source position.
///
/// This is the library entry the CLI (and the future pre-simulation
/// optimizer) consume. Line numbers are absent — parse with
/// [`Circuit::parse_with_sources`] and use [`lint_with_sources`] (or
/// [`lint_text`]) to attach them.
#[must_use]
pub fn lint(circuit: &Circuit) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    liveness::dead_code_lints(circuit, &mut diags);
    structural::structural_lints(circuit, &mut diags);
    symbolic::symbolic_lints(circuit, &mut diags);
    rewrite::fusable_run_lints(circuit, &mut diags);
    sort_diags(&mut diags);
    diags
}

/// Lints a circuit and resolves each finding's structural path to its
/// source line through `sources`.
#[must_use]
pub fn lint_with_sources(circuit: &Circuit, sources: &SourceMap) -> Vec<Diagnostic> {
    let mut diags = lint(circuit);
    for d in &mut diags {
        d.line = sources.line_at(&d.path);
    }
    sort_diags(&mut diags);
    diags
}

/// Parses and lints circuit text. Parse and validation failures are
/// reported as error-severity diagnostics (`SP000`/`SP006`/`SP007`)
/// instead of a `Result`, so callers render one uniform stream.
#[must_use]
pub fn lint_text(text: &str) -> Vec<Diagnostic> {
    match Circuit::parse_with_sources(text) {
        Ok((circuit, sources)) => lint_with_sources(&circuit, &sources),
        Err(e) => {
            // Classify validation failures that have dedicated codes; a
            // valid `Circuit` cannot contain these, so they only ever
            // surface here.
            let code = if e.message.contains("reaches before the start of the record")
                || e.message.contains("REPEAT body reaches")
            {
                "SP006"
            } else if e.message.contains("repeats qubit") {
                "SP007"
            } else {
                "SP000"
            };
            vec![Diagnostic {
                code,
                severity: Severity::Error,
                line: Some(e.line),
                path: Vec::new(),
                message: e.message,
                help: help_for(code),
            }]
        }
    }
}

fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.line.unwrap_or(usize::MAX), a.code, &a.message).cmp(&(
            b.line.unwrap_or(usize::MAX),
            b.code,
            &b.message,
        ))
    });
}

/// Renders findings as human-readable text, one finding per line plus a
/// help line:
///
/// ```text
/// warning[SP001] line 4: dead gate: H 2 cannot affect any measurement, detector, or observable
///   = help: remove the gate, or check that the intended qubits are targeted
/// ```
#[must_use]
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!("{}[{}]", d.severity, d.code));
        if let Some(line) = d.line {
            out.push_str(&format!(" line {line}"));
        }
        out.push_str(&format!(": {}\n  = help: {}\n", d.message, d.help));
    }
    out
}

/// Renders findings as a JSON array (stable field order, one object per
/// finding): `code`, `slug`, `severity`, `line` (null when absent),
/// `path`, `message`, `help`.
#[must_use]
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"code\":{},\"slug\":{},\"severity\":{},\"line\":{},\"path\":[{}],\"message\":{},\"help\":{}}}",
            json_str(d.code),
            json_str(slug(d.code).unwrap_or("")),
            json_str(&d.severity.to_string()),
            d.line.map_or("null".to_string(), |l| l.to_string()),
            d.path
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(","),
            json_str(&d.message),
            json_str(d.help),
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Walks every instruction node once (REPEAT bodies are *not* unrolled),
/// calling `f` with the structural path and the node. Cost is O(file).
pub(crate) fn walk_nodes<'c>(
    instrs: &'c [Instruction],
    path: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize], &'c Instruction),
) {
    for (i, ins) in instrs.iter().enumerate() {
        path.push(i);
        f(path, ins);
        if let Instruction::Repeat { body, .. } = ins {
            walk_nodes(body.instructions(), path, f);
        }
        path.pop();
    }
}

/// Walks instructions in execution order, unrolling REPEAT bodies
/// (`count` passes over the same nodes — the path does not distinguish
/// iterations). Cost is O(flattened); only call this on small or
/// truncated circuits.
pub(crate) fn walk_flat<'c>(
    instrs: &'c [Instruction],
    path: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize], &'c Instruction),
) {
    for (i, ins) in instrs.iter().enumerate() {
        path.push(i);
        if let Instruction::Repeat { count, body } = ins {
            for _ in 0..*count {
                walk_flat(body.instructions(), path, f);
            }
        } else {
            f(path, ins);
        }
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_and_unique() {
        let codes: Vec<&str> = CODES.iter().map(|(c, _, _)| *c).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "codes must be sorted and unique");
        assert!(is_known_code("SP001"));
        assert!(!is_known_code("SP999"));
        assert_eq!(slug("SP001"), Some("dead-gate"));
    }

    #[test]
    fn parse_errors_classify() {
        let d = &lint_text("FROB 0\n")[0];
        assert_eq!((d.code, d.severity), ("SP000", Severity::Error));
        assert_eq!(d.line, Some(1));

        let d = &lint_text("M 0\nDETECTOR rec[-2]\n")[0];
        assert_eq!((d.code, d.severity), ("SP006", Severity::Error));
        assert_eq!(d.line, Some(2));

        let d = &lint_text("REPEAT 3 {\n M 0\n DETECTOR rec[-1] rec[-2]\n}\n")[0];
        assert_eq!(d.code, "SP006");

        let d = &lint_text("MPP X0*Z0\n")[0];
        assert_eq!((d.code, d.severity), ("SP007", Severity::Error));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        let diags = vec![diag("SP001", &[1, 2], "quote \" here".into())];
        let json = render_json(&diags);
        assert!(json.contains(r#""path":[1,2]"#), "{json}");
        assert!(json.contains(r#""quote \" here""#), "{json}");
        assert!(render_json(&[]).trim() == "[]");
    }
}
