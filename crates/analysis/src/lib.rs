//! Static analysis for SymPhase circuits: the library behind
//! `symphase lint` and `symphase analyze`.
//!
//! Four analysis families feed one [`Diagnostic`] stream:
//!
//! * **Tableau-dataflow liveness** ([`liveness`]): a backward pass over
//!   per-qubit Pauli-component masks, propagated through
//!   [`Gate::conjugate`](symphase_circuit::Gate::conjugate), that proves
//!   gates (`SP001`) and noise channels (`SP002`) unable to affect any
//!   measurement, detector, or observable. `REPEAT` bodies are analyzed
//!   once to a join fixpoint, so the pass is O(file) whatever the trip
//!   counts.
//! * **Symbolic constant detection** ([`symbolic`]): reuses the sparse
//!   symbolic initialization to flag detectors whose expression is
//!   constant (`SP003`) and observables that are deterministic (`SP004`).
//! * **Structural lints** ([`structural`]): unused qubits (`SP005`),
//!   probability-zero channels (`SP008`), duplicate detectors (`SP009`),
//!   and shadowed `ELSE_CORRELATED_ERROR` elements (`SP010`).
//! * **DEM-level analysis** ([`dem_graph`], [`distance`], entered
//!   through [`analyze_circuit`]/[`analyze_model`]): the extracted
//!   detector error model is checked as a hypergraph — undecomposable
//!   hyperedges (`SP012`), disconnected detectors (`SP013`), dominated
//!   mechanisms (`SP014`) — and a bounded minimum-weight search reports
//!   undetectable logical errors (`SP015`). Every `SP015` fault set is
//!   discharged by fault injection before it is reported; a claim the
//!   verifier cannot confirm is withdrawn as an internal `SP101`.
//!
//! Parse/validation failures surface as error-severity diagnostics
//! (`SP000`, `SP006`, `SP007`) through [`lint_text`] — a valid
//! [`Circuit`] cannot contain them, so they never come out of [`lint`].
//!
//! The dead-code findings are *verified* findings: [`verify`] re-checks
//! them against the symbolic initialization (removing every flagged gate
//! must leave the measurement/detector/observable matrices identical;
//! every flagged noise channel's symbols must be absent from the
//! detector and observable rows), and the test suite runs those checks
//! over the fixture corpus and the built-in generators.

use std::fmt;

use symphase_circuit::{Circuit, Instruction, SourceMap};
use symphase_core::{DetectorErrorModel, SymPhaseSampler, SymbolId};

pub mod dem_graph;
pub mod distance;
pub mod liveness;
pub mod opt;
pub mod rewrite;
pub mod structural;
pub mod symbolic;
pub mod verify;

pub use dem_graph::{DemGraph, GraphSummary};
pub use distance::{min_weight_logical_error, Distance, FaultSet};
pub use opt::{
    optimize, optimize_with, OptConfig, OptReport, OptResult, Pass, PassStats, ProofStatus,
    RewriteProof,
};

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but well-formed circuit structure.
    Warning,
    /// The input is not a valid circuit.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`"SP001"`, …); see [`CODES`].
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// 1-based source line, when the finding maps to one. `None` for
    /// circuit-level findings (e.g. an unused qubit) and for circuits
    /// built programmatically rather than parsed.
    pub line: Option<usize>,
    /// Structural path of the offending instruction: indices into nested
    /// instruction lists, outermost first. Empty for circuit-level
    /// findings.
    pub path: Vec<usize>,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// Code-level guidance on how to fix it.
    pub help: &'static str,
    /// Structured machine-readable detail, for findings whose substance
    /// is a set of indices rather than a source span (the DEM-level
    /// codes `SP012`–`SP015`). `None` for all other codes.
    pub payload: Option<Payload>,
}

/// Structured payload of a DEM-level diagnostic. Rendered as a JSON
/// object (with a `kind` discriminator) by [`render_json`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// A set of error mechanisms and their shared symptom
    /// (`SP012`: the undecomposable hyperedge; `SP014`: the dominated
    /// group).
    Mechanisms {
        /// Mechanism indices into the model's canonical order, sorted.
        indices: Vec<usize>,
        /// Detectors of the shared symptom.
        detectors: Vec<u32>,
        /// Observables of the shared symptom.
        observables: Vec<u32>,
    },
    /// A single detector (`SP013`).
    Detector {
        /// The disconnected detector's index.
        index: u32,
    },
    /// An undetectable logical error (`SP015`).
    FaultSet {
        /// Number of mechanisms in the set.
        weight: usize,
        /// Mechanism indices into the model's canonical order, sorted.
        mechanisms: Vec<usize>,
        /// Observables the set flips, sorted.
        observables: Vec<u32>,
        /// Fault symbols injected to discharge the claim (XOR of the
        /// mechanisms' witnesses); empty when the model was parsed from
        /// a file and carries no witnesses.
        symbols: Vec<SymbolId>,
        /// Whether fault injection confirmed the claim. `false` only for
        /// parsed models, where no circuit exists to inject into — an
        /// extracted model's failed confirmation withdraws the finding
        /// instead (`SP101`).
        verified: bool,
        /// Whether the analyzed circuit was trip-count-clamped first, so
        /// the claim speaks about the clamped circuit.
        clamped: bool,
    },
}

/// Catalog of every diagnostic code: `(code, slug, help)`.
///
/// `docs/lint.md` documents each entry; the fixture corpus under
/// `tests/lint/` exercises each with a positive and a negative case.
pub const CODES: &[(&str, &str, &str)] = &[
    (
        "SP000",
        "parse-error",
        "fix the syntax error; see docs/formats.md for the accepted grammar",
    ),
    (
        "SP001",
        "dead-gate",
        "remove the gate, or check that the intended qubits are targeted",
    ),
    (
        "SP002",
        "dead-noise",
        "remove the channel, or add detectors covering the qubits it faults",
    ),
    (
        "SP003",
        "vacuous-detector",
        "check the rec[-k] offsets: the detector compares measurements whose symbolic difference is a constant",
    ),
    (
        "SP004",
        "deterministic-observable",
        "check the rec[-k] offsets: no noise or randomness reaches this observable",
    ),
    (
        "SP005",
        "unused-qubit",
        "remove the qubit from QUBIT_COORDS or renumber the remaining qubits contiguously",
    ),
    (
        "SP006",
        "record-out-of-range",
        "reduce the rec[-k] offset or move the instruction after enough measurements",
    ),
    (
        "SP007",
        "repeated-mpp-qubit",
        "merge the factors acting on the qubit into a single Pauli factor",
    ),
    (
        "SP008",
        "zero-probability-channel",
        "remove the channel or give it a nonzero probability",
    ),
    (
        "SP009",
        "duplicate-detector",
        "remove one of the detectors comparing the same measurement set",
    ),
    (
        "SP010",
        "shadowed-else",
        "an earlier element of the E/ELSE chain fires with probability 1, so this element never fires; drop it or lower the earlier probability",
    ),
    (
        "SP011",
        "fusable-clifford-run",
        "adjacent single-qubit Clifford gates compose to a shorter canonical word; fuse them by hand or run `symphase opt`",
    ),
    (
        "SP012",
        "undecomposable-hyperedge",
        "matching decoders need every hyperedge to split into graphlike (≤ 2-detector) mechanisms already in the model; add the missing component mechanisms or use a hypergraph decoder",
    ),
    (
        "SP013",
        "disconnected-detector",
        "no error mechanism flips this detector, so it can never fire; remove it or add noise on the qubits it checks",
    ),
    (
        "SP014",
        "dominated-mechanism",
        "mechanisms with identical detector/observable signatures should be merged into one with XOR-combined probability",
    ),
    (
        "SP015",
        "undetectable-logical-error",
        "the listed mechanisms flip a logical observable while leaving every detector silent; the circuit distance is at most their count",
    ),
];

/// Short kebab-case name of a diagnostic code.
#[must_use]
pub fn slug(code: &str) -> Option<&'static str> {
    CODES
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|(_, s, _)| *s)
}

/// Whether `code` names a known diagnostic.
#[must_use]
pub fn is_known_code(code: &str) -> bool {
    CODES.iter().any(|(c, _, _)| *c == code)
}

fn help_for(code: &str) -> &'static str {
    CODES
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|(_, _, h)| *h)
        .expect("diagnostic codes come from the catalog")
}

pub(crate) fn diag(code: &'static str, path: &[usize], message: String) -> Diagnostic {
    Diagnostic {
        code,
        severity: Severity::Warning,
        line: None,
        path: path.to_vec(),
        message,
        help: help_for(code),
        payload: None,
    }
}

/// Lints a circuit, returning all findings sorted by source position.
///
/// This is the library entry the CLI (and the future pre-simulation
/// optimizer) consume. Line numbers are absent — parse with
/// [`Circuit::parse_with_sources`] and use [`lint_with_sources`] (or
/// [`lint_text`]) to attach them.
#[must_use]
pub fn lint(circuit: &Circuit) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    liveness::dead_code_lints(circuit, &mut diags);
    structural::structural_lints(circuit, &mut diags);
    symbolic::symbolic_lints(circuit, &mut diags);
    rewrite::fusable_run_lints(circuit, &mut diags);
    sort_diags(&mut diags);
    diags
}

/// Lints a circuit and resolves each finding's structural path to its
/// source line through `sources`.
#[must_use]
pub fn lint_with_sources(circuit: &Circuit, sources: &SourceMap) -> Vec<Diagnostic> {
    let mut diags = lint(circuit);
    for d in &mut diags {
        d.line = sources.line_at(&d.path);
    }
    sort_diags(&mut diags);
    diags
}

/// Parses and lints circuit text. Parse and validation failures are
/// reported as error-severity diagnostics (`SP000`/`SP006`/`SP007`)
/// instead of a `Result`, so callers render one uniform stream.
#[must_use]
pub fn lint_text(text: &str) -> Vec<Diagnostic> {
    match Circuit::parse_with_sources(text) {
        Ok((circuit, sources)) => lint_with_sources(&circuit, &sources),
        Err(e) => {
            // Classify validation failures that have dedicated codes; a
            // valid `Circuit` cannot contain these, so they only ever
            // surface here.
            let code = if e.message.contains("reaches before the start of the record")
                || e.message.contains("REPEAT body reaches")
            {
                "SP006"
            } else if e.message.contains("repeats qubit") {
                "SP007"
            } else {
                "SP000"
            };
            vec![Diagnostic {
                code,
                severity: Severity::Error,
                line: Some(e.line),
                path: Vec::new(),
                message: e.message,
                help: help_for(code),
                payload: None,
            }]
        }
    }
}

fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.line.unwrap_or(usize::MAX), a.code, &a.message).cmp(&(
            b.line.unwrap_or(usize::MAX),
            b.code,
            &b.message,
        ))
    });
}

/// Renders findings as human-readable text, one finding per line plus a
/// help line:
///
/// ```text
/// warning[SP001] line 4: dead gate: H 2 cannot affect any measurement, detector, or observable
///   = help: remove the gate, or check that the intended qubits are targeted
/// ```
#[must_use]
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!("{}[{}]", d.severity, d.code));
        if let Some(line) = d.line {
            out.push_str(&format!(" line {line}"));
        }
        out.push_str(&format!(": {}\n  = help: {}\n", d.message, d.help));
    }
    out
}

/// Renders findings as a JSON array (stable field order, one object per
/// finding): `code`, `slug`, `severity`, `line` (null when absent),
/// `path`, `message`, `help`, `payload` (null, or an object with a
/// `kind` discriminator for the DEM-level codes).
#[must_use]
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"code\":{},\"slug\":{},\"severity\":{},\"line\":{},\"path\":[{}],\"message\":{},\"help\":{},\"payload\":{}}}",
            json_str(d.code),
            json_str(slug(d.code).unwrap_or("")),
            json_str(&d.severity.to_string()),
            d.line.map_or("null".to_string(), |l| l.to_string()),
            d.path
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(","),
            json_str(&d.message),
            json_str(d.help),
            d.payload
                .as_ref()
                .map_or("null".to_string(), render_payload),
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn render_payload(p: &Payload) -> String {
    fn list<T: fmt::Display>(xs: &[T]) -> String {
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
    match p {
        Payload::Mechanisms {
            indices,
            detectors,
            observables,
        } => format!(
            "{{\"kind\":\"mechanisms\",\"indices\":[{}],\"detectors\":[{}],\"observables\":[{}]}}",
            list(indices),
            list(detectors),
            list(observables),
        ),
        Payload::Detector { index } => {
            format!("{{\"kind\":\"detector\",\"index\":{index}}}")
        }
        Payload::FaultSet {
            weight,
            mechanisms,
            observables,
            symbols,
            verified,
            clamped,
        } => format!(
            "{{\"kind\":\"fault-set\",\"weight\":{},\"mechanisms\":[{}],\"observables\":[{}],\"symbols\":[{}],\"verified\":{},\"clamped\":{}}}",
            weight,
            list(mechanisms),
            list(observables),
            list(symbols),
            verified,
            clamped,
        ),
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Internal-diagnostic code for a withdrawn distance claim. Deliberately
/// not in [`CODES`]: it reports an analyzer bug (the search proposed a
/// fault set that fault injection could not confirm), not a property of
/// the user's circuit, so it has no fixture pair and cannot be
/// `--deny`ed into existence by circuit text.
pub const WITHDRAWN_CODE: &str = "SP101";

const WITHDRAWN_HELP: &str = "internal: the distance search reported a fault set that \
     fault-injection verification could not confirm; the claim was withdrawn — please report \
     this as an analyzer bug";

/// Knobs for [`analyze_circuit`]/[`analyze_model`].
#[derive(Clone, Debug)]
pub struct AnalyzeConfig {
    /// Weight cap of the distance search: reaching no undetectable
    /// logical error certifies `distance > max_weight`.
    pub max_weight: usize,
    /// State cap of the distance search; hitting it reports
    /// [`Distance::Clamped`].
    pub node_budget: usize,
    /// Test-only: corrupt the fault-injection symbol set before
    /// verification, so the verifier must reject the (correct) claim and
    /// the withdraw path runs. Never set outside tests.
    #[doc(hidden)]
    pub broken_verify: bool,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            max_weight: 5,
            node_budget: distance::DEFAULT_NODE_BUDGET,
            broken_verify: false,
        }
    }
}

/// Everything `symphase analyze` prints: the extracted (or parsed)
/// model, its hypergraph census, the distance search outcome, and the
/// DEM-level diagnostics.
#[derive(Clone, Debug)]
pub struct AnalyzeReport {
    /// The analyzed model.
    pub dem: DetectorErrorModel,
    /// Hypergraph census from [`DemGraph::lints`].
    pub summary: GraphSummary,
    /// Raw distance search outcome. When [`withdrawn`](Self::withdrawn)
    /// is set, this claim failed verification and must be ignored.
    pub distance: Distance,
    /// Whether a reported fault set was confirmed by fault injection.
    /// `false` when the search found none, or the model was parsed from
    /// a file (nothing to inject into).
    pub verified: bool,
    /// Whether a reported fault set FAILED verification and the distance
    /// claim was withdrawn (`SP101` in [`diagnostics`](Self::diagnostics)).
    pub withdrawn: bool,
    /// Whether the circuit was trip-count-clamped before extraction, so
    /// every claim speaks about the clamped circuit.
    pub clamped: bool,
    /// `SP012`–`SP015` findings (plus `SP101` on a withdraw), sorted.
    pub diagnostics: Vec<Diagnostic>,
}

/// Extracts the circuit's detector error model and analyzes it:
/// hypergraph lints, bounded distance search, and fault-injection
/// verification of any reported fault set against the same circuit.
///
/// Circuits whose flattened work exceeds the symbolic budget are
/// REPEAT-clamped first (reported via [`AnalyzeReport::clamped`]), so
/// the cost stays O(file). Errors when the circuit is too large even
/// after clamping, or tracks more than 64 observables.
pub fn analyze_circuit(circuit: &Circuit, config: &AnalyzeConfig) -> Result<AnalyzeReport, String> {
    let clamped_circuit;
    let (target, clamped) = if symbolic::work(circuit) <= symbolic::MAX_SYMBOLIC_WORK {
        (circuit, false)
    } else {
        match symbolic::clamp_circuit(circuit) {
            Some(c) if symbolic::work(&c) <= symbolic::MAX_SYMBOLIC_WORK => {
                clamped_circuit = c;
                (&clamped_circuit, true)
            }
            _ => {
                return Err(
                    "circuit is too large to analyze even after clamping REPEAT counts".into(),
                )
            }
        }
    };
    let sampler = SymPhaseSampler::new(target);
    let dem = sampler
        .detector_error_model()
        .with_detector_coords(target.detector_coordinates());
    analyze(dem, config, Some(target), clamped)
}

/// Analyzes a model parsed from a `.dem` file. No circuit exists to
/// inject faults into, so any reported fault set carries
/// `verified: false` in its payload. Errors when the model tracks more
/// than 64 observables.
pub fn analyze_model(
    dem: DetectorErrorModel,
    config: &AnalyzeConfig,
) -> Result<AnalyzeReport, String> {
    analyze(dem, config, None, false)
}

/// The DEM-level diagnostics of a circuit under the default
/// [`AnalyzeConfig`], as one sorted stream — the `symphase analyze`
/// counterpart of [`lint`]. Returns no findings for circuits the
/// analyzer cannot take on (too large even after clamping, or more than
/// 64 observables).
#[must_use]
pub fn analyze_dem(circuit: &Circuit) -> Vec<Diagnostic> {
    analyze_circuit(circuit, &AnalyzeConfig::default())
        .map(|r| r.diagnostics)
        .unwrap_or_default()
}

fn analyze(
    dem: DetectorErrorModel,
    config: &AnalyzeConfig,
    inject: Option<&Circuit>,
    clamped: bool,
) -> Result<AnalyzeReport, String> {
    if dem.num_observables() > 64 {
        return Err(format!(
            "the model tracks {} observables; the distance search supports at most 64",
            dem.num_observables()
        ));
    }
    let mut diagnostics = Vec::new();
    let graph = DemGraph::new(&dem);
    let summary = graph.lints(&mut diagnostics);
    let dist = distance::min_weight_logical_error(&dem, config.max_weight, config.node_budget);

    let mut verified = false;
    let mut withdrawn = false;
    if let Distance::UpperBound { fault_set } = &dist {
        // XOR of the mechanisms' witness symbol sets: by linearity of
        // the symbolic rows, firing exactly these symbols produces the
        // XOR of the mechanisms' symptoms.
        let mut symbols: Vec<SymbolId> = Vec::new();
        for &m in &fault_set.mechanisms {
            for &s in &dem.errors()[m].witness {
                match symbols.binary_search(&s) {
                    Ok(pos) => {
                        symbols.remove(pos);
                    }
                    Err(pos) => symbols.insert(pos, s),
                }
            }
        }
        let outcome = match inject {
            Some(circuit) => {
                let mut injected = symbols.clone();
                if config.broken_verify {
                    injected.pop();
                }
                Some(verify::fault_set_check(
                    circuit,
                    &injected,
                    &fault_set.observables,
                ))
            }
            None => None,
        };
        match outcome {
            Some(Err(reason)) => {
                withdrawn = true;
                diagnostics.push(Diagnostic {
                    code: WITHDRAWN_CODE,
                    severity: Severity::Error,
                    line: None,
                    path: Vec::new(),
                    message: format!(
                        "distance claim withdrawn: fault injection of the reported weight-{} set \
                         failed verification: {reason}",
                        fault_set.weight()
                    ),
                    help: WITHDRAWN_HELP,
                    payload: None,
                });
            }
            outcome => {
                verified = matches!(outcome, Some(Ok(())));
                let obs: Vec<String> = fault_set
                    .observables
                    .iter()
                    .map(|o| format!("L{o}"))
                    .collect();
                let scope = if clamped {
                    " of the clamped circuit"
                } else {
                    ""
                };
                let mut d = diag(
                    "SP015",
                    &[],
                    format!(
                        "undetectable logical error: {} mechanism{} flip{} {} while every detector \
                         stays silent (circuit distance{scope} is at most {})",
                        fault_set.weight(),
                        if fault_set.weight() == 1 { "" } else { "s" },
                        if fault_set.weight() == 1 { "s" } else { "" },
                        obs.join(" "),
                        fault_set.weight(),
                    ),
                );
                d.payload = Some(Payload::FaultSet {
                    weight: fault_set.weight(),
                    mechanisms: fault_set.mechanisms.clone(),
                    observables: fault_set.observables.clone(),
                    symbols,
                    verified,
                    clamped,
                });
                diagnostics.push(d);
            }
        }
    }
    sort_diags(&mut diagnostics);
    Ok(AnalyzeReport {
        dem,
        summary,
        distance: dist,
        verified,
        withdrawn,
        clamped,
        diagnostics,
    })
}

/// Walks every instruction node once (REPEAT bodies are *not* unrolled),
/// calling `f` with the structural path and the node. Cost is O(file).
pub(crate) fn walk_nodes<'c>(
    instrs: &'c [Instruction],
    path: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize], &'c Instruction),
) {
    for (i, ins) in instrs.iter().enumerate() {
        path.push(i);
        f(path, ins);
        if let Instruction::Repeat { body, .. } = ins {
            walk_nodes(body.instructions(), path, f);
        }
        path.pop();
    }
}

/// Walks instructions in execution order, unrolling REPEAT bodies
/// (`count` passes over the same nodes — the path does not distinguish
/// iterations). Cost is O(flattened); only call this on small or
/// truncated circuits.
pub(crate) fn walk_flat<'c>(
    instrs: &'c [Instruction],
    path: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize], &'c Instruction),
) {
    for (i, ins) in instrs.iter().enumerate() {
        path.push(i);
        if let Instruction::Repeat { count, body } = ins {
            for _ in 0..*count {
                walk_flat(body.instructions(), path, f);
            }
        } else {
            f(path, ins);
        }
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_and_unique() {
        let codes: Vec<&str> = CODES.iter().map(|(c, _, _)| *c).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "codes must be sorted and unique");
        assert!(is_known_code("SP001"));
        assert!(!is_known_code("SP999"));
        assert_eq!(slug("SP001"), Some("dead-gate"));
    }

    #[test]
    fn parse_errors_classify() {
        let d = &lint_text("FROB 0\n")[0];
        assert_eq!((d.code, d.severity), ("SP000", Severity::Error));
        assert_eq!(d.line, Some(1));

        let d = &lint_text("M 0\nDETECTOR rec[-2]\n")[0];
        assert_eq!((d.code, d.severity), ("SP006", Severity::Error));
        assert_eq!(d.line, Some(2));

        let d = &lint_text("REPEAT 3 {\n M 0\n DETECTOR rec[-1] rec[-2]\n}\n")[0];
        assert_eq!(d.code, "SP006");

        let d = &lint_text("MPP X0*Z0\n")[0];
        assert_eq!((d.code, d.severity), ("SP007", Severity::Error));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        let diags = vec![diag("SP001", &[1, 2], "quote \" here".into())];
        let json = render_json(&diags);
        assert!(json.contains(r#""path":[1,2]"#), "{json}");
        assert!(json.contains(r#""quote \" here""#), "{json}");
        assert!(render_json(&[]).trim() == "[]");
    }
}
