//! The three tableau-dataflow rewrite passes behind [`crate::optimize`]:
//! **strip**, **fuse**, and **Pauli-propagate**.
//!
//! Each pass is a pure function `&Circuit -> Option<PassChange>`: it
//! either proposes a rewritten circuit (plus the bookkeeping the
//! translation validator needs — which noise sites were removed, which
//! measurement records had their signs flipped) or reports that it has
//! nothing to do. Passes never *apply* themselves: the driver in
//! [`crate::opt`] discharges every proposal through
//! [`crate::verify::rewrite_equiv_check`] and rolls back proposals whose
//! proof fails.
//!
//! * **strip** deletes `SP001` dead gates and `SP002` invisible noise
//!   using the liveness facts of [`crate::liveness`]. `REPEAT`-aware and
//!   O(file): a flagged node inside a million-round body is removed from
//!   the body once. Correlated-error chains are only stripped
//!   suffix-first — removing a middle `ELSE_CORRELATED_ERROR` would
//!   change the firing condition of the surviving later elements.
//! * **fuse** collapses maximal runs of adjacent single-qubit gate
//!   instructions: each qubit's run composes to one
//!   [`Clifford1`] element, which re-emits as its canonical word (0–2
//!   gates). A run is rewritten only when that strictly reduces the gate
//!   count, and the emission order is deterministic, so the pass is
//!   idempotent. The same run detection powers the `SP011` lint.
//! * **propagate** pushes standalone `X`/`Y`/`Z` gates forward as a
//!   per-qubit Pauli frame, conjugating through Cliffords
//!   ([`Gate::conjugate`]), absorbing into resets, and **flipping the
//!   recorded sign** of anticommuting measurements instead of keeping
//!   the gate. Records referenced by detectors/observables (or reachable
//!   from a `REPEAT` body) are never flipped — the frame is
//!   *materialized* (re-emitted as explicit gates) there instead, so
//!   detector and observable semantics are preserved exactly. Records
//!   whose outcome is **random** (the symbolic expression draws a fresh
//!   coin) also materialize rather than flip: the engine absorbs an
//!   anticommuting Pauli into the coin with no constant flip, so a
//!   declared flip there would be unsound.
//!   Classically-controlled Paulis conditioned on a flipped record are
//!   compensated by folding the controlled Pauli into the frame. Inside
//!   `REPEAT` bodies the pass runs with flipping disabled and
//!   materializes the residual frame at the body end, so the rewritten
//!   body is exact for every iteration.

use std::collections::{BTreeMap, HashSet};

use symphase_circuit::{Block, Circuit, Clifford1, Gate, Instruction, PauliKind, SmallPauli};
use symphase_core::SymPhaseSampler;

use crate::{diag, liveness, symbolic, Diagnostic};

/// A measurement whose recorded sign the propagate pass flipped:
/// `index` is the **top-level instruction index in the pass-input
/// circuit** and `offset` the measurement's position within that
/// instruction. Keeping the site structural (rather than an absolute
/// record index) lets the validator recompute absolute positions after
/// clamping `REPEAT` trip counts. Flips only ever target top-level
/// instructions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlipSite {
    /// Top-level instruction index in the pass-input circuit.
    pub index: usize,
    /// Measurement offset within the instruction (target order; product
    /// order for `MPP`).
    pub offset: usize,
}

/// A proposed rewrite: the candidate circuit plus what the translation
/// validator needs to check it.
#[derive(Clone, Debug)]
pub struct PassChange {
    /// The rewritten circuit.
    pub circuit: Circuit,
    /// Measurement records whose signs the rewrite flips.
    pub flips: Vec<FlipSite>,
    /// Structural paths of noise instructions the rewrite removed.
    pub removed_noise_paths: HashSet<Vec<usize>>,
    /// Pass-specific count: nodes stripped / runs fused / Paulis
    /// absorbed.
    pub detail: usize,
}

impl PassChange {
    fn new(circuit: Circuit) -> Self {
        PassChange {
            circuit,
            flips: Vec::new(),
            removed_noise_paths: HashSet::new(),
            detail: 0,
        }
    }
}

/// Resolves [`FlipSite`]s to absolute measurement-record indices in
/// `circuit` (which must share the pass-input circuit's top-level
/// measurement layout).
///
/// # Errors
///
/// Returns a message when a site does not name a top-level measurement
/// of `circuit` — a validator-side sanity check.
pub fn absolute_flips(circuit: &Circuit, flips: &[FlipSite]) -> Result<Vec<usize>, String> {
    let instrs = circuit.instructions();
    let mut prefix = Vec::with_capacity(instrs.len());
    let mut count = 0usize;
    for ins in instrs {
        prefix.push(count);
        count += ins.measurements_added();
    }
    flips
        .iter()
        .map(|site| {
            let base = *prefix
                .get(site.index)
                .ok_or_else(|| format!("flip site {} past the end of the circuit", site.index))?;
            let added = instrs[site.index].measurements_added();
            if site.offset >= added {
                return Err(format!(
                    "flip offset {} out of range for instruction {}",
                    site.offset, site.index
                ));
            }
            Ok(base + site.offset)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// strip
// ---------------------------------------------------------------------------

/// Deletes every `SP001` dead gate and `SP002` invisible noise channel.
///
/// # Errors
///
/// Returns a message when the stripped circuit fails to rebuild (cannot
/// happen for liveness-flagged nodes; the error path guards the
/// invariant).
pub fn strip(circuit: &Circuit) -> Result<Option<PassChange>, String> {
    let mut diags = Vec::new();
    liveness::dead_code_lints(circuit, &mut diags);
    let mut gate_paths: HashSet<Vec<usize>> = HashSet::new();
    let mut noise_paths: HashSet<Vec<usize>> = HashSet::new();
    for d in diags {
        match d.code {
            "SP001" => {
                gate_paths.insert(d.path);
            }
            "SP002" => {
                noise_paths.insert(d.path);
            }
            _ => {}
        }
    }
    restrict_chains_to_suffixes(circuit.instructions(), &mut Vec::new(), &mut noise_paths);
    if gate_paths.is_empty() && noise_paths.is_empty() {
        return Ok(None);
    }
    let mut all = gate_paths.clone();
    all.extend(noise_paths.iter().cloned());
    let stripped = crate::verify::strip_paths(circuit, &all)?;
    let mut change = PassChange::new(stripped);
    change.detail = all.len();
    change.removed_noise_paths = noise_paths;
    Ok(Some(change))
}

/// Removes from `noise_paths` every correlated-error chain element that
/// has a surviving later element: an `ELSE_CORRELATED_ERROR` fires only
/// when no earlier chain element fired, so deleting a middle element
/// would change the firing distribution of the survivors. Only contiguous
/// chain *suffixes* are safe to strip.
fn restrict_chains_to_suffixes(
    instrs: &[Instruction],
    prefix: &mut Vec<usize>,
    noise_paths: &mut HashSet<Vec<usize>>,
) {
    let mut i = 0;
    while i < instrs.len() {
        match &instrs[i] {
            Instruction::CorrelatedError { .. } => {
                let start = i;
                let mut end = i + 1;
                while end < instrs.len()
                    && matches!(
                        instrs[end],
                        Instruction::CorrelatedError {
                            else_branch: true,
                            ..
                        }
                    )
                {
                    end += 1;
                }
                let mut suffix_ok = true;
                for idx in (start..end).rev() {
                    prefix.push(idx);
                    if !noise_paths.contains(prefix.as_slice()) {
                        suffix_ok = false;
                    } else if !suffix_ok {
                        noise_paths.remove(prefix.as_slice());
                    }
                    prefix.pop();
                }
                i = end;
            }
            Instruction::Repeat { body, .. } => {
                prefix.push(i);
                restrict_chains_to_suffixes(body.instructions(), prefix, noise_paths);
                prefix.pop();
                i += 1;
            }
            _ => i += 1,
        }
    }
}

// ---------------------------------------------------------------------------
// fuse
// ---------------------------------------------------------------------------

fn is_single_qubit_gate(ins: &Instruction) -> bool {
    matches!(ins, Instruction::Gate { gate, .. } if gate.arity() == 1)
}

/// Per-qubit summary of one run of adjacent single-qubit gate
/// instructions: composed element, number of gate applications.
fn run_composition(run: &[Instruction]) -> BTreeMap<u32, (Clifford1, usize)> {
    let mut per: BTreeMap<u32, (Clifford1, usize)> = BTreeMap::new();
    for ins in run {
        let Instruction::Gate { gate, targets } = ins else {
            unreachable!("runs contain only gate instructions");
        };
        for &q in targets {
            let entry = per.entry(q).or_insert((Clifford1::identity(), 0));
            entry.0 = entry.0.then(Clifford1::from_gate(*gate));
            entry.1 += 1;
        }
    }
    per
}

/// `(total gate applications, applications after canonicalization,
/// largest per-qubit run length)` for one run.
fn run_summary(run: &[Instruction]) -> (usize, usize, usize) {
    let per = run_composition(run);
    let total: usize = per.values().map(|(_, n)| n).sum();
    let after: usize = per.values().map(|(c, _)| c.canonical_gates().len()).sum();
    let longest = per.values().map(|(_, n)| *n).max().unwrap_or(0);
    (total, after, longest)
}

/// Replaces a run with the canonical emission when strictly shorter.
/// Emission order is deterministic: canonical-word position 0 first,
/// then position 1, each grouped into broadcast instructions per gate in
/// [`Gate::ALL`] order with ascending targets — so re-fusing the output
/// is a no-op.
fn fuse_run(run: &[Instruction]) -> Option<Vec<Instruction>> {
    let per = run_composition(run);
    let total: usize = per.values().map(|(_, n)| n).sum();
    let after: usize = per.values().map(|(c, _)| c.canonical_gates().len()).sum();
    if after >= total {
        return None;
    }
    let words: BTreeMap<u32, &'static [Gate]> = per
        .iter()
        .map(|(&q, &(c, _))| (q, c.canonical_gates()))
        .collect();
    let mut out = Vec::new();
    for pos in 0..2 {
        for &g in Gate::ALL.iter().filter(|g| g.arity() == 1) {
            let targets: Vec<u32> = words
                .iter()
                .filter(|(_, w)| w.len() > pos && w[pos] == g)
                .map(|(&q, _)| q)
                .collect();
            if !targets.is_empty() {
                out.push(Instruction::Gate { gate: g, targets });
            }
        }
    }
    Some(out)
}

fn fuse_instrs(instrs: &[Instruction], fused_runs: &mut usize) -> (Vec<Instruction>, bool) {
    let mut out = Vec::with_capacity(instrs.len());
    let mut changed = false;
    let mut i = 0;
    while i < instrs.len() {
        if is_single_qubit_gate(&instrs[i]) {
            let start = i;
            while i < instrs.len() && is_single_qubit_gate(&instrs[i]) {
                i += 1;
            }
            match fuse_run(&instrs[start..i]) {
                Some(replacement) => {
                    *fused_runs += 1;
                    changed = true;
                    out.extend(replacement);
                }
                None => out.extend(instrs[start..i].iter().cloned()),
            }
        } else if let Instruction::Repeat { count, body } = &instrs[i] {
            let (inner, inner_changed) = fuse_instrs(body.instructions(), fused_runs);
            changed |= inner_changed;
            let mut new_body = Block::new();
            for ins in inner {
                new_body
                    .try_push(ins)
                    .expect("fused body re-validates: only gate instructions changed");
            }
            out.push(Instruction::Repeat {
                count: *count,
                body: Box::new(new_body),
            });
            i += 1;
        } else {
            out.push(instrs[i].clone());
            i += 1;
        }
    }
    (out, changed)
}

/// Collapses every fusable single-qubit Clifford run to its canonical
/// word (see the module docs).
///
/// # Errors
///
/// Returns a message when the fused circuit fails to rebuild (guards the
/// invariant that fusing cannot invalidate record lookbacks).
pub fn fuse(circuit: &Circuit) -> Result<Option<PassChange>, String> {
    let mut fused_runs = 0usize;
    let (instrs, changed) = fuse_instrs(circuit.instructions(), &mut fused_runs);
    if !changed {
        return Ok(None);
    }
    let mut out = Circuit::new(circuit.num_qubits());
    for ins in instrs {
        out.try_push(ins)?;
    }
    let mut change = PassChange::new(out);
    change.detail = fused_runs;
    Ok(Some(change))
}

/// Emits `SP011` for every run the fuse pass would rewrite that contains
/// at least two adjacent gates on one qubit, anchored at the run's first
/// instruction. Shares `run_summary` with the fuse pass so the lint
/// and the rewrite can never disagree about what is fusable.
pub fn fusable_run_lints(circuit: &Circuit, diags: &mut Vec<Diagnostic>) {
    fn scan(instrs: &[Instruction], prefix: &mut Vec<usize>, diags: &mut Vec<Diagnostic>) {
        let mut i = 0;
        while i < instrs.len() {
            if is_single_qubit_gate(&instrs[i]) {
                let start = i;
                while i < instrs.len() && is_single_qubit_gate(&instrs[i]) {
                    i += 1;
                }
                let (total, after, longest) = run_summary(&instrs[start..i]);
                if after < total && longest >= 2 {
                    prefix.push(start);
                    diags.push(diag(
                        "SP011",
                        prefix,
                        format!(
                            "fusable single-qubit Clifford run: {total} gate application(s) \
                             reduce to {after}"
                        ),
                    ));
                    prefix.pop();
                }
            } else {
                if let Instruction::Repeat { body, .. } = &instrs[i] {
                    prefix.push(i);
                    scan(body.instructions(), prefix, diags);
                    prefix.pop();
                }
                i += 1;
            }
        }
    }
    scan(circuit.instructions(), &mut Vec::new(), diags);
}

// ---------------------------------------------------------------------------
// propagate
// ---------------------------------------------------------------------------

/// Per-qubit Pauli frame: `(x, z)` component bits. The sign is a global
/// phase and is never tracked.
type FrameBits = (bool, bool);

fn pauli_bits(gate: Gate) -> Option<FrameBits> {
    match gate {
        Gate::X => Some((true, false)),
        Gate::Y => Some((true, true)),
        Gate::Z => Some((false, true)),
        _ => None,
    }
}

fn frame_kind(f: FrameBits) -> Option<PauliKind> {
    match f {
        (false, false) => None,
        (true, false) => Some(PauliKind::X),
        (true, true) => Some(PauliKind::Y),
        (false, true) => Some(PauliKind::Z),
    }
}

/// Whether the frame anticommutes with a measurement in `basis`
/// (symplectic product of the component bits).
fn frame_anticommutes(f: FrameBits, basis: PauliKind) -> bool {
    let (bx, bz) = basis.xz();
    (f.0 & bz) ^ (f.1 & bx)
}

fn conjugate_frame1(gate: Gate, f: FrameBits) -> FrameBits {
    if f == (false, false) {
        return f;
    }
    let img = gate.conjugate(SmallPauli::two(f.0, f.1, false, false));
    (img.x0, img.z0)
}

fn conjugate_frame2(gate: Gate, a: FrameBits, b: FrameBits) -> (FrameBits, FrameBits) {
    if a == (false, false) && b == (false, false) {
        return (a, b);
    }
    let img = gate.conjugate(SmallPauli::two(a.0, a.1, b.0, b.1));
    ((img.x0, img.z0), (img.x1, img.z1))
}

/// Re-emits the frames of `qubits` as explicit Pauli gate instructions
/// (grouped `X`, `Y`, `Z` broadcasts with ascending targets) and clears
/// them. Materialization is always exact: the frame *is* the deleted
/// gates, conjugated forward to this point.
fn materialize(out: &mut Vec<Instruction>, frame: &mut [FrameBits], qubits: &[u32]) -> usize {
    let mut by_kind: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut sorted: Vec<u32> = qubits.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    for q in sorted {
        if let Some(kind) = frame_kind(frame[q as usize]) {
            let slot = match kind {
                PauliKind::X => 0,
                PauliKind::Y => 1,
                PauliKind::Z => 2,
            };
            by_kind[slot].push(q);
            frame[q as usize] = (false, false);
        }
    }
    let mut emitted = 0;
    for (gate, targets) in [Gate::X, Gate::Y, Gate::Z].into_iter().zip(by_kind) {
        if !targets.is_empty() {
            emitted += targets.len();
            out.push(Instruction::Gate { gate, targets });
        }
    }
    emitted
}

fn all_framed_qubits(frame: &[FrameBits]) -> Vec<u32> {
    frame
        .iter()
        .enumerate()
        .filter(|(_, f)| **f != (false, false))
        .map(|(q, _)| q as u32)
        .collect()
}

/// Measurement records the propagate pass must never flip: every record
/// referenced by a top-level detector or observable, plus the
/// [`Block::required_record`] window before each top-level `REPEAT`
/// (which over-approximates the records the body's first iterations can
/// reference). Flips never occur inside `REPEAT` bodies, so in-body
/// records need no entry.
fn barred_records(circuit: &Circuit) -> HashSet<usize> {
    let mut barred = HashSet::new();
    let mut count = 0usize;
    for ins in circuit.instructions() {
        match ins {
            Instruction::Detector { lookbacks, .. }
            | Instruction::ObservableInclude { lookbacks, .. } => {
                for &l in lookbacks {
                    let d = usize::try_from(l.unsigned_abs()).unwrap_or(usize::MAX);
                    if d <= count {
                        barred.insert(count - d);
                    }
                }
            }
            Instruction::Repeat { body, .. } => {
                for k in count.saturating_sub(body.required_record())..count {
                    barred.insert(k);
                }
            }
            _ => {}
        }
        count += ins.measurements_added();
    }
    barred
}

/// Records (absolute indices in `circuit`) of top-level measurements
/// whose outcome is *random*: their symbolic expression draws a fresh
/// coin. Flipping such a record is unsound — the measurement procedure
/// discards the displaced stabilizer sign, so an anticommuting frame is
/// absorbed into the coin with **no** constant flip — and the propagate
/// pass materializes frames there instead.
///
/// Oversized circuits are classified on the same trip-count clamp the
/// translation validator replays (determinism of a top-level record is
/// read off the clamped row at the matching top-level position); `None`
/// means the circuit cannot be replayed even clamped, and the caller
/// must treat every record as random.
fn random_records(circuit: &Circuit) -> Option<HashSet<usize>> {
    let clamped_circuit;
    let target = if symbolic::work(circuit) <= symbolic::MAX_SYMBOLIC_WORK {
        circuit
    } else {
        match symbolic::clamp_circuit(circuit) {
            Some(c) if symbolic::work(&c) <= symbolic::MAX_SYMBOLIC_WORK => {
                clamped_circuit = c;
                &clamped_circuit
            }
            _ => return None,
        }
    };
    let sampler = SymPhaseSampler::new(target);
    // Randomness is reported by Initialization at collapse time, per
    // record. (It cannot be reconstructed from the rows: resets allocate
    // coins without recording anything, and a re-measurement after a
    // collapse *inherits* an earlier coin while staying deterministic
    // and flippable.)
    let is_random = sampler.random_measurement_records();
    let mut random = HashSet::new();
    let mut full_base = 0usize;
    let mut clamp_base = 0usize;
    // Clamping preserves the top-level instruction sequence one-to-one
    // (only `REPEAT` trip counts shrink), so the two record streams walk
    // in lockstep; flips never target in-body records, so only the
    // non-`REPEAT` rows need classifying.
    for (full_ins, clamp_ins) in circuit.instructions().iter().zip(target.instructions()) {
        let n = full_ins.measurements_added();
        if !matches!(full_ins, Instruction::Repeat { .. }) {
            for o in 0..n {
                if is_random[clamp_base + o] {
                    random.insert(full_base + o);
                }
            }
        }
        full_base += n;
        clamp_base += clamp_ins.measurements_added();
    }
    Some(random)
}

/// Whether any standalone Pauli gate occurs anywhere in `instrs` — the
/// only frame source, so its absence means propagate cannot act.
fn has_pauli_gate(instrs: &[Instruction]) -> bool {
    instrs.iter().any(|ins| match ins {
        Instruction::Gate { gate, .. } => pauli_bits(*gate).is_some(),
        Instruction::Repeat { body, .. } => has_pauli_gate(body.instructions()),
        _ => false,
    })
}

struct Propagation {
    frame: Vec<FrameBits>,
    absorbed: usize,
    changed: bool,
}

impl Propagation {
    fn absorb(&mut self, gate: Gate, targets: &[u32]) {
        let bits = pauli_bits(gate).expect("only Pauli gates are absorbed");
        for &q in targets {
            let f = &mut self.frame[q as usize];
            f.0 ^= bits.0;
            f.1 ^= bits.1;
        }
        self.absorbed += targets.len();
        self.changed = true;
    }

    fn conjugate_gate(&mut self, gate: Gate, targets: &[u32]) {
        if gate.arity() == 1 {
            for &q in targets {
                self.frame[q as usize] = conjugate_frame1(gate, self.frame[q as usize]);
            }
        } else {
            for pair in targets.chunks_exact(2) {
                let (a, b) = (pair[0] as usize, pair[1] as usize);
                let (fa, fb) = conjugate_frame2(gate, self.frame[a], self.frame[b]);
                self.frame[a] = fa;
                self.frame[b] = fb;
            }
        }
    }
}

/// Processes one instruction sequence. `flippable` is `Some(barred)` at
/// the top level (flips allowed except at barred records) and `None`
/// inside `REPEAT` bodies (always materialize). Returns the rewritten
/// sequence.
#[allow(clippy::too_many_lines)]
fn propagate_instrs(
    instrs: &[Instruction],
    state: &mut Propagation,
    flippable: Option<&HashSet<usize>>,
    record_start: usize,
    flips: &mut Vec<FlipSite>,
    flipped_abs: &mut HashSet<usize>,
) -> Result<Vec<Instruction>, String> {
    let mut out: Vec<Instruction> = Vec::with_capacity(instrs.len());
    let mut record = record_start;
    for (idx, ins) in instrs.iter().enumerate() {
        match ins {
            Instruction::Gate { gate, targets } if pauli_bits(*gate).is_some() => {
                state.absorb(*gate, targets);
            }
            Instruction::Gate { gate, targets } => {
                state.conjugate_gate(*gate, targets);
                out.push(ins.clone());
            }
            Instruction::Measure { basis, targets } => {
                let mut to_materialize = Vec::new();
                for (o, &q) in targets.iter().enumerate() {
                    if !frame_anticommutes(state.frame[q as usize], *basis) {
                        continue;
                    }
                    match flippable {
                        Some(barred) if !barred.contains(&(record + o)) => {
                            flips.push(FlipSite {
                                index: idx,
                                offset: o,
                            });
                            flipped_abs.insert(record + o);
                            state.changed = true;
                        }
                        _ => to_materialize.push(q),
                    }
                }
                materialize(&mut out, &mut state.frame, &to_materialize);
                out.push(ins.clone());
                record += targets.len();
            }
            Instruction::MeasureReset { basis, targets } => {
                let mut to_materialize = Vec::new();
                for (o, &q) in targets.iter().enumerate() {
                    if !frame_anticommutes(state.frame[q as usize], *basis) {
                        continue;
                    }
                    match flippable {
                        Some(barred) if !barred.contains(&(record + o)) => {
                            flips.push(FlipSite {
                                index: idx,
                                offset: o,
                            });
                            flipped_abs.insert(record + o);
                            state.changed = true;
                        }
                        _ => to_materialize.push(q),
                    }
                }
                materialize(&mut out, &mut state.frame, &to_materialize);
                out.push(ins.clone());
                // The reset half absorbs whatever frame remains.
                for &q in targets {
                    if state.frame[q as usize] != (false, false) {
                        state.frame[q as usize] = (false, false);
                        state.changed = true;
                    }
                }
                record += targets.len();
            }
            Instruction::Reset { targets, .. } => {
                for &q in targets {
                    if state.frame[q as usize] != (false, false) {
                        state.frame[q as usize] = (false, false);
                        state.changed = true;
                    }
                }
                out.push(ins.clone());
            }
            Instruction::MeasurePauliProduct { products } => {
                let mut to_materialize: Vec<u32> = Vec::new();
                for (o, product) in products.iter().enumerate() {
                    let parity = product.iter().fold(false, |acc, &(kind, q)| {
                        acc ^ frame_anticommutes(state.frame[q as usize], kind)
                    });
                    if !parity {
                        continue;
                    }
                    match flippable {
                        Some(barred) if !barred.contains(&(record + o)) => {
                            flips.push(FlipSite {
                                index: idx,
                                offset: o,
                            });
                            flipped_abs.insert(record + o);
                            state.changed = true;
                        }
                        _ => to_materialize.extend(product.iter().map(|&(_, q)| q)),
                    }
                }
                materialize(&mut out, &mut state.frame, &to_materialize);
                out.push(ins.clone());
                record += products.len();
            }
            Instruction::Feedback {
                pauli,
                lookback,
                target,
            } => {
                let reference = i64::try_from(record).unwrap_or(i64::MAX) + lookback;
                if reference >= 0 && flipped_abs.contains(&(reference as usize)) {
                    // The optimized record bit is complemented, so the
                    // controlled Pauli now fires on exactly the opposite
                    // shots; an unconditional compensating Pauli folded
                    // into the frame restores the original semantics.
                    let (bx, bz) = pauli.xz();
                    let f = &mut state.frame[*target as usize];
                    f.0 ^= bx;
                    f.1 ^= bz;
                    state.changed = true;
                }
                out.push(ins.clone());
            }
            Instruction::Repeat { count, body } => {
                // The body must transform identically for every
                // iteration, so it is entered frame-free and left
                // frame-free.
                let framed = all_framed_qubits(&state.frame);
                materialize(&mut out, &mut state.frame, &framed);
                let inner =
                    propagate_instrs(body.instructions(), state, None, 0, flips, flipped_abs)?;
                let mut new_body = Block::new();
                for i in inner {
                    new_body.try_push(i)?;
                }
                out.push(Instruction::Repeat {
                    count: *count,
                    body: Box::new(new_body),
                });
                record += ins.measurements_added();
            }
            Instruction::Noise { .. }
            | Instruction::CorrelatedError { .. }
            | Instruction::Detector { .. }
            | Instruction::ObservableInclude { .. }
            | Instruction::Tick
            | Instruction::QubitCoords { .. }
            | Instruction::ShiftCoords { .. } => {
                // Pauli conjugation maps every noise channel's generator
                // set to itself (up to sign), so frames pass through
                // noise unchanged.
                out.push(ins.clone());
            }
        }
    }
    if flippable.is_none() {
        // Residual frame at block end: the next iteration must see the
        // same entry state, so re-emit it.
        let framed = all_framed_qubits(&state.frame);
        materialize(&mut out, &mut state.frame, &framed);
    }
    // At the top level the residual frame follows the last instruction:
    // nothing can observe it, so it is dropped (it is exactly a dead
    // gate).
    Ok(out)
}

/// Pushes standalone Pauli gates forward into measurement-record sign
/// flips (see the module docs).
///
/// # Errors
///
/// Returns a message when the rewritten circuit fails to rebuild.
pub fn propagate(circuit: &Circuit) -> Result<Option<PassChange>, String> {
    if !has_pauli_gate(circuit.instructions()) {
        return Ok(None);
    }
    let mut barred = barred_records(circuit);
    // `None` (unclassifiable even clamped) degrades to materialize-only:
    // Paulis still move up to their observation points but no record is
    // ever flipped.
    let flippable = match random_records(circuit) {
        Some(random) => {
            barred.extend(random);
            Some(&barred)
        }
        None => None,
    };
    let mut state = Propagation {
        frame: vec![(false, false); circuit.num_qubits() as usize],
        absorbed: 0,
        changed: false,
    };
    let mut flips = Vec::new();
    let mut flipped_abs = HashSet::new();
    let instrs = propagate_instrs(
        circuit.instructions(),
        &mut state,
        flippable,
        0,
        &mut flips,
        &mut flipped_abs,
    )?;
    if !state.changed {
        return Ok(None);
    }
    let mut out = Circuit::new(circuit.num_qubits());
    for ins in instrs {
        out.try_push(ins)?;
    }
    if out == *circuit && flips.is_empty() {
        // Everything absorbed was re-materialized in place.
        return Ok(None);
    }
    let mut change = PassChange::new(out);
    change.flips = flips;
    change.detail = state.absorbed;
    Ok(Some(change))
}

// ---------------------------------------------------------------------------
// deliberately broken rule (test-only surface)
// ---------------------------------------------------------------------------

/// A deliberately unsound "rewrite" that swaps the first top-level `H`
/// for an `S`: used by the test suite to pin that translation validation
/// catches a semantics-changing rule and rolls it back. Hidden from docs
/// but `pub` so integration tests can reach it through
/// [`crate::optimize_with`].
///
/// # Errors
///
/// Returns a message when the rebuilt circuit fails validation.
#[doc(hidden)]
pub fn broken_for_tests(circuit: &Circuit) -> Result<Option<PassChange>, String> {
    let mut out = Circuit::new(circuit.num_qubits());
    let mut swapped = false;
    for ins in circuit.instructions() {
        let ins = match ins {
            Instruction::Gate {
                gate: Gate::H,
                targets,
            } if !swapped => {
                swapped = true;
                Instruction::Gate {
                    gate: Gate::S,
                    targets: targets.clone(),
                }
            }
            other => other.clone(),
        };
        out.try_push(ins)?;
    }
    if !swapped {
        return Ok(None);
    }
    let mut change = PassChange::new(out);
    change.detail = 1;
    Ok(Some(change))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Circuit {
        Circuit::parse(text).unwrap()
    }

    #[test]
    fn fuse_collapses_inverse_pair() {
        let c = parse("H 0\nH 0\nM 0\n");
        let change = fuse(&c).unwrap().unwrap();
        assert_eq!(change.circuit.to_string(), "M 0\n");
        assert_eq!(change.detail, 1);
    }

    #[test]
    fn fuse_is_idempotent_on_its_output() {
        let c = parse("S 0\nS 0\nS 0\nH 1\nX 1\nM 0 1\n");
        let change = fuse(&c).unwrap().unwrap();
        assert!(fuse(&change.circuit).unwrap().is_none());
    }

    #[test]
    fn fuse_leaves_minimal_runs_alone() {
        let c = parse("H 0\nCX 0 1\nH 0\nM 0 1\n");
        assert!(fuse(&c).unwrap().is_none());
    }

    #[test]
    fn fuse_rewrites_inside_repeat_bodies() {
        let c = parse("REPEAT 5 {\n S 0\n S_DAG 0\n M 0\n}\n");
        let change = fuse(&c).unwrap().unwrap();
        assert_eq!(change.circuit.stats().gates, 0);
        assert_eq!(change.circuit.num_measurements(), 5);
    }

    #[test]
    fn sp011_fires_and_matches_fuse() {
        let c = parse("H 0\nH 0\nM 0\n");
        let mut diags = Vec::new();
        fusable_run_lints(&c, &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SP011");
        assert_eq!(diags[0].path, vec![0]);
        // Distinct qubits: adjacent but nothing to fuse.
        let c = parse("H 0\nS 1\nM 0 1\n");
        let mut diags = Vec::new();
        fusable_run_lints(&c, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn strip_removes_dead_gate_and_noise() {
        let c = parse("X_ERROR(0.1) 0\nM 0\nDETECTOR rec[-1]\nZ_ERROR(0.2) 0\nM 0\nS 0\n");
        let change = strip(&c).unwrap().unwrap();
        assert_eq!(change.circuit.stats().noise_sites, 1);
        assert!(change
            .circuit
            .to_string()
            .lines()
            .all(|l| l != "S 0" && !l.starts_with("Z_ERROR")));
        assert_eq!(change.removed_noise_paths.len(), 1);
    }

    #[test]
    fn strip_keeps_chain_heads_with_live_tails() {
        // Head and middle act on an unmeasured qubit; the tail flips the
        // detected qubit. Only a suffix may be stripped, and the live
        // tail means nothing in this chain is strippable.
        let c = parse(
            "E(0.25) X1\nELSE_CORRELATED_ERROR(0.25) X1\nELSE_CORRELATED_ERROR(0.25) X0\n\
             M 0\nDETECTOR rec[-1]\n",
        );
        let mut diags = Vec::new();
        liveness::dead_code_lints(&c, &mut diags);
        let flagged: Vec<_> = diags.iter().filter(|d| d.code == "SP002").collect();
        assert!(!flagged.is_empty(), "dead chain prefix should be flagged");
        let change = strip(&c).unwrap();
        assert!(
            change.is_none(),
            "chain prefix with a live tail must survive: {change:?}"
        );
    }

    #[test]
    fn propagate_flips_unreferenced_measurement() {
        let c = parse("X 0\nM 0\nM 1\n");
        let change = propagate(&c).unwrap().unwrap();
        assert_eq!(change.circuit.stats().gates, 0);
        assert_eq!(
            change.flips,
            vec![FlipSite {
                index: 1,
                offset: 0
            }]
        );
        assert_eq!(absolute_flips(&c, &change.flips).unwrap(), vec![0],);
    }

    #[test]
    fn propagate_materializes_at_random_measurement() {
        // M 0 on |+⟩ draws a fresh coin: the engine absorbs the X into
        // it with no constant flip, so flipping would be unsound. The
        // frame materializes in place instead — a no-change proposal.
        let c = parse("H 0\nX 0\nM 0\n");
        assert!(propagate(&c).unwrap().is_none());
        // Entangled variant: the Bell partner's record *would* expose a
        // bad flip; the pass must bar it the same way.
        let bell = parse("H 0\nCX 0 1\nX 0\nM 0\nM 1\n");
        assert!(propagate(&bell).unwrap().is_none());
        // A deterministic record after a collapse still flips.
        let after = parse("M 0\nX 0\nM 0\nM 1\n");
        let change = propagate(&after).unwrap().unwrap();
        assert_eq!(change.circuit.stats().gates, 0);
        assert_eq!(absolute_flips(&after, &change.flips).unwrap(), vec![1]);
        // A re-measurement *inheriting* the first record's coin is
        // deterministic given it — still flippable.
        let inherit = parse("H 0\nM 0\nX 0\nM 0\n");
        let change = propagate(&inherit).unwrap().unwrap();
        assert_eq!(change.circuit.to_string(), "H 0\nM 0\nM 0\n");
        assert_eq!(absolute_flips(&inherit, &change.flips).unwrap(), vec![1]);
    }

    #[test]
    fn propagate_materializes_at_detector_referenced_measurement() {
        let c = parse("X 0\nM 0\nDETECTOR rec[-1]\n");
        let change = propagate(&c).unwrap();
        // The only rewrite would re-emit X in place: reported as
        // no-change.
        assert!(change.is_none(), "{change:?}");
    }

    #[test]
    fn propagate_conjugates_through_cliffords() {
        // X through H becomes Z, which commutes with M: the gate
        // disappears without a flip.
        let c = parse("X 0\nH 0\nM 0\nDETECTOR rec[-1]\n");
        let change = propagate(&c).unwrap().unwrap();
        assert_eq!(change.circuit.stats().gates, 1, "{}", change.circuit);
        assert!(change.flips.is_empty());
    }

    #[test]
    fn propagate_absorbs_into_reset() {
        let c = parse("X 0\nR 0\nM 0\nDETECTOR rec[-1]\n");
        let change = propagate(&c).unwrap().unwrap();
        assert_eq!(change.circuit.stats().gates, 0);
        assert!(change.flips.is_empty());
    }

    #[test]
    fn propagate_keeps_repeat_bodies_frame_neutral() {
        let c = parse("X 0\nREPEAT 3 {\n M 0\n}\nM 0\n");
        // rec window before the REPEAT is empty (no lookbacks), so the
        // pre-block X may flip in-block measurements? No: flips inside
        // bodies are disabled; the frame materializes before the block.
        let change = propagate(&c).unwrap();
        if let Some(change) = &change {
            assert!(change.flips.iter().all(|f| f.index < 1));
        }
    }

    #[test]
    fn propagate_compensates_feedback_on_flipped_record() {
        let c = parse("X 0\nM 0\nCX rec[-1] 1\nM 1\n");
        let change = propagate(&c).unwrap().unwrap();
        assert_eq!(
            absolute_flips(&c, &change.flips).unwrap(),
            vec![0, 1],
            "record 0 flips directly; record 1 flips through the \
             compensating frame on qubit 1: {}",
            change.circuit
        );
    }

    #[test]
    fn broken_rule_changes_semantics() {
        let c = parse("H 0\nM 0\n");
        let change = broken_for_tests(&c).unwrap().unwrap();
        assert_eq!(change.circuit.to_string(), "S 0\nM 0\n");
    }
}
