//! Backward tableau-dataflow liveness: proves gates (`SP001`) and noise
//! channels (`SP002`) unable to influence anything observable.
//!
//! # The dataflow
//!
//! The pass walks the circuit **backward**, maintaining for every qubit a
//! small mask of Pauli-component kinds (`X`/`Y`/`Z`) that are *live* —
//! i.e. components of some operator whose evolution downstream of the
//! current point can still reach an output. Masks are propagated through
//! [`Gate::conjugate`]: a component kind `K` is live before gate `G`
//! exactly when the kind of `G K G†` is live after it (for two-qubit
//! gates, all cross products of the two slots' live kinds are conjugated
//! and their components OR-ed in — a sound over-approximation that keeps
//! the state per-qubit).
//!
//! Two mask families answer two different questions:
//!
//! * `any` — seeds at **every** collapse site (measurement basis, reset
//!   basis, MPP factor kinds), every noise generator kind, and every
//!   feedback Pauli. A gate whose conjugation *exactly fixes* (including
//!   phase) every live `any` component at its site commutes with every
//!   downstream collapse operator and fault operator: removing it changes
//!   no collapse status, no coin allocation, no outcome expression, and
//!   no fault placement — the full symbolic initialization is identical.
//!   That is the `SP001` dead-gate criterion, and it is what makes the
//!   removal-based verification in [`crate::verify`] sound.
//! * `det` — seeds only at measurements referenced (transitively) by
//!   `DETECTOR`/`OBSERVABLE_INCLUDE`/influential feedback, tracked as
//!   *pending record distances* during the backward walk, **plus** every
//!   collapse basis once any referenced liveness exists downstream. The
//!   latter accounts for fault contamination at collapses: a Pauli fault
//!   anticommuting with a collapse basis is (when the collapse is
//!   random) equivalent to a fault multiplied by an arbitrary stabilizer
//!   afterwards, so it must be treated as able to reach anything later;
//!   a fault that commutes with every downstream collapse basis
//!   propagates by pure conjugation and its symbol reaches exactly the
//!   outcomes whose (back-conjugated) bases it anticommutes with. A noise
//!   channel none of whose generator components anticommutes with any
//!   live `det` kind therefore leaves no symbol in any detector or
//!   observable row — the `SP002` dead-noise criterion.
//!
//! # `REPEAT` fixpoint
//!
//! A `REPEAT n { body }` is analyzed by iterating the body's backward
//! transfer from a joined end-of-iteration state until it stabilizes:
//! pending distances landing inside the block fold to their
//! within-iteration residues, and each pass's body-start state is
//! unioned back into the end state (masks monotonically grow, distances
//! are bounded by the body's lookbacks, so the loop terminates). The
//! body is then *reported* once under the converged join — an
//! instruction is flagged only if it is dead under the union of every
//! iteration's state, i.e. dead in all of them. Total cost is O(file),
//! independent of trip counts.

use std::collections::BTreeSet;

use symphase_circuit::{Circuit, Gate, Instruction, NoiseChannel, PauliKind, SmallPauli};

use crate::{diag, Diagnostic};

const KIND_BITS: [PauliKind; 3] = [PauliKind::X, PauliKind::Y, PauliKind::Z];

fn bit(kind: PauliKind) -> u8 {
    match kind {
        PauliKind::X => 1,
        PauliKind::Y => 2,
        PauliKind::Z => 4,
    }
}

/// Kinds in `mask` that anticommute with a component of kind `k`:
/// distinct single-qubit Pauli kinds always anticommute.
fn anticommuting(mask: u8, k: PauliKind) -> u8 {
    mask & !bit(k)
}

/// The canonical embedding of `kind` at slot 0 or 1 of a [`SmallPauli`]
/// (real `+1` prefactor, so `Y` carries `phase = 1` in `i^e·XZ` form).
fn embed(kind: PauliKind, slot: usize) -> SmallPauli {
    let p = SmallPauli::from_kind(kind);
    if slot == 0 {
        p
    } else {
        SmallPauli {
            x0: false,
            z0: false,
            x1: p.x0,
            z1: p.z0,
            phase: p.phase,
        }
    }
}

fn slot_kind(p: SmallPauli, slot: usize) -> Option<PauliKind> {
    let (x, z) = if slot == 0 {
        (p.x0, p.z0)
    } else {
        (p.x1, p.z1)
    };
    match (x, z) {
        (true, false) => Some(PauliKind::X),
        (true, true) => Some(PauliKind::Y),
        (false, true) => Some(PauliKind::Z),
        (false, false) => None,
    }
}

/// Backward transfer of a live mask through a single-qubit gate: kind `K`
/// is live before `G` iff the kind of `G K G†` is live after.
fn transfer1(gate: Gate, post: u8) -> u8 {
    if post == 0 {
        return 0;
    }
    let mut pre = 0u8;
    for k in KIND_BITS {
        let image = gate.conjugate(embed(k, 0));
        let image_kind = slot_kind(image, 0).expect("conjugation preserves weight on one qubit");
        if post & bit(image_kind) != 0 {
            pre |= bit(k);
        }
    }
    pre
}

/// Backward transfer through a two-qubit gate: every live cross product
/// `A⊗B` (including identity on one side) is conjugated forward and its
/// component kinds checked against the post masks.
fn transfer2(gate: Gate, post_a: u8, post_b: u8) -> (u8, u8) {
    if post_a == 0 && post_b == 0 {
        return (0, 0);
    }
    let mut pre_a = 0u8;
    let mut pre_b = 0u8;
    let slots: [Option<PauliKind>; 4] = [
        None,
        Some(PauliKind::X),
        Some(PauliKind::Y),
        Some(PauliKind::Z),
    ];
    for ka in slots {
        for kb in slots {
            if ka.is_none() && kb.is_none() {
                continue;
            }
            let mut p = SmallPauli::identity();
            if let Some(k) = ka {
                p = p.mul(embed(k, 0));
            }
            if let Some(k) = kb {
                p = p.mul(embed(k, 1));
            }
            let image = gate.conjugate(p);
            let live = slot_kind(image, 0).is_some_and(|c| post_a & bit(c) != 0)
                || slot_kind(image, 1).is_some_and(|c| post_b & bit(c) != 0);
            if live {
                if let Some(k) = ka {
                    pre_a |= bit(k);
                }
                if let Some(k) = kb {
                    pre_b |= bit(k);
                }
            }
        }
    }
    (pre_a, pre_b)
}

/// Whether gate `G` exactly fixes (phase included) the canonical Pauli of
/// each kind in `mask` at `slot`.
fn fixes_all(gate: Gate, mask: u8, slot: usize) -> bool {
    KIND_BITS.iter().all(|&k| {
        if mask & bit(k) == 0 {
            return true;
        }
        let p = embed(k, slot);
        gate.conjugate(p) == p
    })
}

/// The per-qubit single-qubit kinds a noise channel's symbolized fault
/// generators act with, per application (see
/// [`NoiseChannel::symbols_per_application`]): each allocated symbol
/// multiplies one of these components.
fn channel_generators(channel: NoiseChannel) -> &'static [(usize, PauliKind)] {
    match channel {
        NoiseChannel::XError(_) => &[(0, PauliKind::X)],
        NoiseChannel::YError(_) => &[(0, PauliKind::Y)],
        NoiseChannel::ZError(_) => &[(0, PauliKind::Z)],
        NoiseChannel::Depolarize1(_) | NoiseChannel::PauliChannel1 { .. } => {
            &[(0, PauliKind::X), (0, PauliKind::Z)]
        }
        NoiseChannel::Depolarize2(_) | NoiseChannel::PauliChannel2 { .. } => &[
            (0, PauliKind::X),
            (0, PauliKind::Z),
            (1, PauliKind::X),
            (1, PauliKind::Z),
        ],
    }
}

/// Backward dataflow state at one circuit position.
#[derive(Clone, Debug, PartialEq, Eq)]
struct LiveState {
    /// Per-qubit live kinds for the dead-*gate* question.
    any: Vec<u8>,
    /// Per-qubit live kinds for the dead-*noise* question.
    det: Vec<u8>,
    /// Record distances (1 = most recent measurement before this point)
    /// referenced by something downstream.
    pending: BTreeSet<u64>,
}

impl LiveState {
    fn new(num_qubits: usize) -> Self {
        LiveState {
            any: vec![0; num_qubits],
            det: vec![0; num_qubits],
            pending: BTreeSet::new(),
        }
    }

    /// Whether anything referenced by a detector/observable is still
    /// reachable downstream of this point.
    fn ref_live(&self) -> bool {
        !self.pending.is_empty() || self.det.iter().any(|&m| m != 0)
    }

    /// Unions `other` into `self`; reports whether anything grew.
    fn union(&mut self, other: &LiveState) -> bool {
        let mut grew = false;
        for (a, &b) in self.any.iter_mut().zip(&other.any) {
            if *a | b != *a {
                *a |= b;
                grew = true;
            }
        }
        for (a, &b) in self.det.iter_mut().zip(&other.det) {
            if *a | b != *a {
                *a |= b;
                grew = true;
            }
        }
        for &d in &other.pending {
            grew |= self.pending.insert(d);
        }
        grew
    }
}

struct Liveness {
    diags: Vec<Diagnostic>,
    /// `SP002` is suppressed when the circuit declares no detectors and
    /// no observables (a sampling-only circuit's noise is the payload).
    flag_noise: bool,
}

impl Liveness {
    /// One backward pass over `instrs`, mutating `s` from the post-state
    /// to the pre-state. With `report` set, emits diagnostics against
    /// each instruction's post-state.
    fn pass_block(
        &mut self,
        instrs: &[Instruction],
        s: &mut LiveState,
        path: &mut Vec<usize>,
        report: bool,
    ) {
        for (i, ins) in instrs.iter().enumerate().rev() {
            path.push(i);
            if report {
                self.report(ins, s, path);
            }
            self.transfer(ins, s, path, report);
            path.pop();
        }
    }

    /// Emits `SP001`/`SP002` for instructions dead under post-state `s`.
    fn report(&mut self, ins: &Instruction, s: &LiveState, path: &[usize]) {
        match ins {
            Instruction::Gate { gate, targets } => {
                let dead = match gate.arity() {
                    1 => targets
                        .iter()
                        .all(|&q| fixes_all(*gate, s.any[q as usize], 0)),
                    _ => targets.chunks_exact(2).all(|pair| {
                        fixes_all(*gate, s.any[pair[0] as usize], 0)
                            && fixes_all(*gate, s.any[pair[1] as usize], 1)
                    }),
                };
                if dead {
                    self.diags.push(diag(
                        "SP001",
                        path,
                        format!(
                            "dead gate: {} commutes with everything downstream and cannot affect any measurement, detector, or observable",
                            display_gate(*gate, targets),
                        ),
                    ));
                }
            }
            Instruction::Noise { channel, targets } if self.flag_noise => {
                let live = targets.chunks_exact(channel.arity()).any(|app| {
                    channel_generators(*channel)
                        .iter()
                        .any(|&(slot, k)| anticommuting(s.det[app[slot] as usize], k) != 0)
                });
                if !live {
                    self.diags.push(diag(
                        "SP002",
                        path,
                        format!(
                            "dead noise: {} on {} cannot reach any detector or observable",
                            channel.name(),
                            display_targets(targets),
                        ),
                    ));
                }
            }
            Instruction::CorrelatedError { product, .. } if self.flag_noise => {
                let live = product
                    .iter()
                    .any(|&(k, q)| anticommuting(s.det[q as usize], k) != 0);
                if !live {
                    self.diags.push(diag(
                        "SP002",
                        path,
                        "dead noise: correlated error cannot reach any detector or observable"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }

    /// Applies the backward transfer of `ins` to `s`.
    fn transfer(
        &mut self,
        ins: &Instruction,
        s: &mut LiveState,
        path: &mut Vec<usize>,
        report: bool,
    ) {
        match ins {
            Instruction::Tick
            | Instruction::QubitCoords { .. }
            | Instruction::ShiftCoords { .. } => {}
            Instruction::Gate { gate, targets } => match gate.arity() {
                1 => {
                    for &q in targets.iter().rev() {
                        let q = q as usize;
                        s.any[q] = transfer1(*gate, s.any[q]);
                        s.det[q] = transfer1(*gate, s.det[q]);
                    }
                }
                _ => {
                    for pair in targets.chunks_exact(2).rev() {
                        let (a, b) = (pair[0] as usize, pair[1] as usize);
                        let (na, nb) = transfer2(*gate, s.any[a], s.any[b]);
                        (s.any[a], s.any[b]) = (na, nb);
                        let (da, db) = transfer2(*gate, s.det[a], s.det[b]);
                        (s.det[a], s.det[b]) = (da, db);
                    }
                }
            },
            Instruction::Measure { basis, targets }
            | Instruction::MeasureReset { basis, targets } => {
                let landed = self.land_pending(s, targets.len(), |s, idx| {
                    let q = targets[idx] as usize;
                    s.det[q] |= bit(*basis);
                });
                let contaminate = landed || s.ref_live();
                for &q in targets {
                    let q = q as usize;
                    s.any[q] |= bit(*basis);
                    if contaminate {
                        s.det[q] |= bit(*basis);
                    }
                }
            }
            Instruction::Reset { basis, targets } => {
                let contaminate = s.ref_live();
                for &q in targets {
                    let q = q as usize;
                    s.any[q] |= bit(*basis);
                    if contaminate {
                        s.det[q] |= bit(*basis);
                    }
                }
            }
            Instruction::MeasurePauliProduct { products } => {
                let landed = self.land_pending(s, products.len(), |s, idx| {
                    for &(k, q) in &products[idx] {
                        s.det[q as usize] |= bit(k);
                    }
                });
                let contaminate = landed || s.ref_live();
                for product in products {
                    for &(k, q) in product {
                        let q = q as usize;
                        s.any[q] |= bit(k);
                        if contaminate {
                            s.det[q] |= bit(k);
                        }
                    }
                }
            }
            Instruction::Noise { channel, targets } => {
                for app in targets.chunks_exact(channel.arity()) {
                    for &(slot, k) in channel_generators(*channel) {
                        s.any[app[slot] as usize] |= bit(k);
                    }
                }
            }
            Instruction::CorrelatedError { product, .. } => {
                for &(k, q) in product {
                    s.any[q as usize] |= bit(k);
                }
            }
            Instruction::Feedback {
                pauli,
                lookback,
                target,
            } => {
                let q = *target as usize;
                s.any[q] |= bit(*pauli);
                // The applied Pauli only matters when it anticommutes
                // with a live det component at the target; only then is
                // the referenced measurement's value observable.
                if anticommuting(s.det[q], *pauli) != 0 {
                    s.pending.insert(lookback.unsigned_abs());
                }
            }
            Instruction::Detector { lookbacks, .. } => {
                for lb in lookbacks {
                    s.pending.insert(lb.unsigned_abs());
                }
            }
            Instruction::ObservableInclude { lookbacks, .. } => {
                for lb in lookbacks {
                    s.pending.insert(lb.unsigned_abs());
                }
            }
            Instruction::Repeat { count, body } => {
                self.transfer_repeat(
                    *count,
                    body.instructions(),
                    body.measurements() as u64,
                    s,
                    path,
                    report,
                );
            }
        }
    }

    /// Crosses `t` measurements backward: distances `1..=t` land on this
    /// instruction (`seed` is called with the 0-based target index),
    /// larger distances shift down. Returns whether anything landed.
    fn land_pending(
        &mut self,
        s: &mut LiveState,
        t: usize,
        mut seed: impl FnMut(&mut LiveState, usize),
    ) -> bool {
        if s.pending.is_empty() || t == 0 {
            return false;
        }
        let t64 = t as u64;
        let old = std::mem::take(&mut s.pending);
        let mut landed = false;
        for d in old {
            if d <= t64 {
                landed = true;
                seed(s, (t64 - d) as usize);
            } else {
                s.pending.insert(d - t64);
            }
        }
        landed
    }

    /// Backward transfer through `REPEAT count { body }` via the join
    /// fixpoint described in the module docs.
    fn transfer_repeat(
        &mut self,
        count: u64,
        body: &[Instruction],
        body_measurements: u64,
        s: &mut LiveState,
        path: &mut Vec<usize>,
        report: bool,
    ) {
        let m = body_measurements;
        let total = m.saturating_mul(count);
        // Post-pending distances either land inside the block (fold to a
        // within-iteration residue) or pass through beneath it.
        let mut end = LiveState {
            any: std::mem::take(&mut s.any),
            det: std::mem::take(&mut s.det),
            pending: BTreeSet::new(),
        };
        let mut exit_pending: BTreeSet<u64> = BTreeSet::new();
        for &d in &s.pending {
            if m > 0 && d <= total {
                end.pending.insert((d - 1) % m + 1);
            } else {
                exit_pending.insert(d - total);
            }
        }

        if count > 1 {
            // Join fixpoint: fold each pass's body-start state back into
            // the end state until nothing grows. Masks are monotone and
            // pending residues live in [1, m], so this terminates.
            let span = m.saturating_mul(count - 1);
            loop {
                let mut sb = end.clone();
                self.pass_block(body, &mut sb, path, false);
                let mut grew = false;
                for &d in &sb.pending {
                    if m > 0 && d <= span {
                        grew |= end.pending.insert((d - 1) % m + 1);
                    }
                }
                sb.pending.clear();
                grew |= end.union(&sb);
                if !grew {
                    break;
                }
            }
        }

        // One reported pass under the converged join: an instruction is
        // flagged only if dead under the union of all iterations' states.
        let mut sb = end;
        self.pass_block(body, &mut sb, path, report);

        s.any = sb.any;
        s.det = sb.det;
        s.pending = exit_pending;
        // Body-start distances relative to the block start (the first
        // iteration's view) exit the block; for later iterations they
        // were already folded, and re-adding them here only widens the
        // pre-block state (sound).
        s.pending.extend(sb.pending.iter().copied());
    }
}

fn display_gate(gate: Gate, targets: &[u32]) -> String {
    format!("{} {}", gate.name(), display_targets(targets))
}

fn display_targets(targets: &[u32]) -> String {
    targets
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Runs the backward liveness pass, appending `SP001`/`SP002` findings.
pub fn dead_code_lints(circuit: &Circuit, diags: &mut Vec<Diagnostic>) {
    let mut lv = Liveness {
        diags: Vec::new(),
        flag_noise: circuit.num_detectors() > 0 || circuit.num_observables() > 0,
    };
    let mut s = LiveState::new(circuit.num_qubits() as usize);
    let mut path = Vec::new();
    lv.pass_block(circuit.instructions(), &mut s, &mut path, true);
    diags.append(&mut lv.diags);
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphase_circuit::Circuit;

    fn codes_at(text: &str) -> Vec<(String, Vec<usize>)> {
        let circuit = Circuit::parse(text).unwrap();
        let mut diags = Vec::new();
        dead_code_lints(&circuit, &mut diags);
        diags
            .into_iter()
            .map(|d| (d.code.to_string(), d.path))
            .collect()
    }

    #[test]
    fn trailing_gate_is_dead() {
        let found = codes_at("H 0\nM 0\nH 0\n");
        assert_eq!(found, vec![("SP001".into(), vec![2])]);
    }

    #[test]
    fn z_before_z_measurement_is_dead() {
        // Z commutes with the Z-basis collapse and measurement.
        let found = codes_at("H 0\nCX 0 1\nZ 1\nM 1\nM 0\n");
        assert_eq!(found, vec![("SP001".into(), vec![2])]);
        // X before a Z measurement flips the outcome: live.
        assert!(codes_at("X 0\nM 0\n").is_empty());
        // S before a Z measurement fixes Z exactly: dead.
        let found = codes_at("H 0\nS 0\nM 0\n");
        assert_eq!(found, vec![("SP001".into(), vec![1])]);
    }

    #[test]
    fn identity_gate_is_always_dead() {
        let found = codes_at("I 0\nH 0\nM 0\n");
        assert_eq!(found, vec![("SP001".into(), vec![0])]);
    }

    #[test]
    fn phase_flips_keep_gates_live() {
        // Z X Z† = −X: the sign flips an X-basis outcome, so Z before MX
        // must stay live even though the component *kind* is preserved.
        assert!(codes_at("H 0\nZ 0\nMX 0\n").is_empty());
    }

    #[test]
    fn two_qubit_gate_liveness() {
        // CX with a live target is live…
        assert!(codes_at("H 0\nCX 0 1\nM 1\n").is_empty());
        // …and dead when it only permutes components that are never
        // collapsed or measured afterwards.
        let found = codes_at("M 0\nCX 0 1\n");
        assert_eq!(found, vec![("SP001".into(), vec![1])]);
    }

    #[test]
    fn noise_after_last_detector_reference_is_dead() {
        let found = codes_at("M 0\nDETECTOR rec[-1]\nX_ERROR(0.1) 0\nM 0\n");
        assert_eq!(found, vec![("SP002".into(), vec![2])]);
    }

    #[test]
    fn noise_before_unreferenced_collapse_contaminates() {
        // The X error anticommutes with the (unreferenced) Z collapse on
        // qubit 0 while a referenced measurement still lies downstream:
        // the fault can pick up a stabilizer there, so it stays live.
        let text = "H 0\nCX 0 1\nX_ERROR(0.1) 0\nM 0\nM 1\nDETECTOR rec[-1]\n";
        assert!(codes_at(text).is_empty());
    }

    #[test]
    fn noise_on_disjoint_qubit_is_dead() {
        // Qubit 0's error meets no collapse until after the last
        // detector reference: it cannot reach the detector.
        let found = codes_at("X_ERROR(0.1) 0\nM 1\nDETECTOR rec[-1]\nM 0\n");
        assert_eq!(found, vec![("SP002".into(), vec![0])]);
        // Measured *at the same instruction* as the referenced outcome,
        // the fault could contaminate a random collapse there: the
        // conservative pass keeps it live.
        assert!(codes_at("X_ERROR(0.1) 0\nM 0 1\nDETECTOR rec[-1]\n").is_empty());
    }

    #[test]
    fn z_noise_before_z_detector_is_dead() {
        let found = codes_at("Z_ERROR(0.1) 0\nM 0\nDETECTOR rec[-1]\n");
        assert_eq!(found, vec![("SP002".into(), vec![0])]);
        // Depolarizing noise has an X generator: live.
        assert!(codes_at("DEPOLARIZE1(0.1) 0\nM 0\nDETECTOR rec[-1]\n").is_empty());
    }

    #[test]
    fn noise_without_detectors_is_not_flagged() {
        // Sampling-only circuit: the noise is the payload.
        assert!(codes_at("X_ERROR(0.1) 0\nM 0\n").is_empty());
    }

    #[test]
    fn feedback_chains_keep_noise_live() {
        // The noise flips the source measurement, the feedback carries
        // the flip onto qubit 1, and the detector reads it out: the
        // whole chain is live.
        let text = "X_ERROR(0.1) 0\nM 0\nCX rec[-1] 1\nM 1\nDETECTOR rec[-1]\n";
        assert!(codes_at(text).is_empty());
        // Noise injected after the feedback's referenced measurement is
        // past every reference: dead.
        let text = "M 0\nCX rec[-1] 1\nM 1\nDETECTOR rec[-1]\nX_ERROR(0.1) 0\nM 0\n";
        let found = codes_at(text);
        assert_eq!(found, vec![("SP002".into(), vec![4])]);
    }

    #[test]
    fn repeat_fixpoint_tracks_cross_iteration_lookbacks() {
        // Each iteration's detector reaches one measurement back across
        // the iteration boundary, keeping the in-body noise live.
        let text = "M 0\nREPEAT 5 {\n X_ERROR(0.1) 0\n M 0\n DETECTOR rec[-1] rec[-2]\n}\n";
        assert!(codes_at(text).is_empty());
        // A loop running entirely after the last detector reference is
        // dead noise, every iteration.
        let text = "M 0\nDETECTOR rec[-1]\nREPEAT 5 {\n X_ERROR(0.1) 0\n M 0\n}\n";
        let found = codes_at(text);
        assert_eq!(found, vec![("SP002".into(), vec![2, 0])]);
    }

    #[test]
    fn repeat_is_o_file_on_huge_trip_counts() {
        let text =
            "M 0\nREPEAT 1000000 {\n H 0\n X_ERROR(0.01) 0\n M 0\n DETECTOR rec[-1] rec[-2]\n}\n";
        let circuit = Circuit::parse(text).unwrap();
        let start = std::time::Instant::now();
        let mut diags = Vec::new();
        dead_code_lints(&circuit, &mut diags);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "liveness must not scale with the trip count"
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn repeat_body_flagged_only_if_dead_in_every_iteration() {
        // The last iteration's trailing H is followed by nothing, but
        // earlier iterations' H gates precede live measurements — the
        // joined state keeps the node live.
        let text = "REPEAT 3 {\n M 0\n H 0\n}\nM 0\nDETECTOR rec[-1]\n";
        assert!(codes_at(text).is_empty());
    }
}
