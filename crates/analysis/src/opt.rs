//! The verified optimizer driver: `analysis::optimize`.
//!
//! [`optimize`] runs the rewrite passes of [`crate::rewrite`] (strip →
//! fuse → propagate by default) in rounds until a full round changes
//! nothing. Rounds matter for idempotence: propagate can conjugate a
//! Pauli past a measurement to where strip can delete it, and fuse can
//! *create* standalone Paulis (e.g. `S S → Z`) for propagate to absorb —
//! a single linear sweep would leave work behind that a second
//! `optimize` call would then find.
//!
//! Every proposed rewrite is **translation-validated** before it is
//! accepted: [`crate::verify::rewrite_equiv_check`] proves the input and
//! output circuits' detector and observable symbolic matrices
//! row-identical, and the measurement matrices identical up to the
//! pass's recorded sign flips and stripped invisible-noise symbols. A
//! proposal whose proof fails is **rolled back** — the driver keeps the
//! pre-pass circuit and reports the failure as an internal `SP100`
//! diagnostic — so an unsound rule can never silently change semantics.
//! The discharged obligations are returned as [`RewriteProof`] records.

use std::collections::HashSet;

use symphase_circuit::Circuit;

use crate::rewrite::{self, PassChange};
use crate::verify;
use crate::{Diagnostic, Severity};

/// Internal-diagnostic code for a rolled-back rewrite. Deliberately not
/// in [`crate::CODES`]: it reports an optimizer bug, not a property of
/// the user's circuit, so it has no fixture pair and cannot be
/// `--deny`ed into existence by circuit text.
pub const ROLLBACK_CODE: &str = "SP100";

const ROLLBACK_HELP: &str = "internal: an optimizer rewrite failed translation validation and \
     was rolled back; the circuit is unchanged — please report this as an optimizer bug";

/// Safety bound on fixpoint rounds. Each productive round strictly
/// shrinks the circuit or resolves sign flips, so real inputs converge
/// in 2–3 rounds; the cap only guards against a (rolled-back) buggy
/// pass oscillating.
const MAX_ROUNDS: usize = 8;

/// One rewrite pass.
// Not a non-exhaustive marker: the hidden variant is a real, constructible
// pass (the rollback-path test depends on it).
#[allow(clippy::manual_non_exhaustive)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pass {
    /// Delete `SP001` dead gates and `SP002` invisible noise.
    Strip,
    /// Collapse adjacent single-qubit Clifford runs to canonical words.
    Fuse,
    /// Push standalone Paulis into measurement-record sign flips.
    Propagate,
    /// Deliberately unsound rule used to pin the rollback path in tests.
    #[doc(hidden)]
    BrokenForTests,
}

impl Pass {
    /// Stable pass name, as accepted by `--passes`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Pass::Strip => "strip",
            Pass::Fuse => "fuse",
            Pass::Propagate => "propagate",
            Pass::BrokenForTests => "broken-for-tests",
        }
    }

    /// Parses a public pass name (`strip`, `fuse`, `propagate`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Pass> {
        match name {
            "strip" => Some(Pass::Strip),
            "fuse" => Some(Pass::Fuse),
            "propagate" => Some(Pass::Propagate),
            _ => None,
        }
    }

    fn run(self, circuit: &Circuit) -> Result<Option<PassChange>, String> {
        match self {
            Pass::Strip => rewrite::strip(circuit),
            Pass::Fuse => rewrite::fuse(circuit),
            Pass::Propagate => rewrite::propagate(circuit),
            Pass::BrokenForTests => rewrite::broken_for_tests(circuit),
        }
    }
}

/// Which passes to run, in order, each round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptConfig {
    /// Pass list applied per round.
    pub passes: Vec<Pass>,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            passes: vec![Pass::Strip, Pass::Fuse, Pass::Propagate],
        }
    }
}

/// Per-pass accounting across all rounds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Pass name.
    pub pass: &'static str,
    /// Verified rewrites applied.
    pub applications: usize,
    /// Proposals rejected by translation validation (or a pass error).
    pub rollbacks: usize,
    /// Gate applications removed (flattened counts, `REPEAT`-weighted).
    pub gates_removed: usize,
    /// Noise sites removed (flattened counts).
    pub noise_sites_removed: usize,
    /// Measurement-record sign flips introduced.
    pub sign_flips: usize,
    /// Pass-specific detail: liveness nodes stripped / runs fused /
    /// Paulis absorbed.
    pub detail: usize,
}

/// Summary of what [`optimize`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptReport {
    /// Flattened gate applications before optimization.
    pub gates_before: usize,
    /// Flattened gate applications after optimization.
    pub gates_after: usize,
    /// Flattened noise sites before optimization.
    pub noise_sites_before: usize,
    /// Flattened noise sites after optimization.
    pub noise_sites_after: usize,
    /// Measurement count (invariant under every pass).
    pub measurements: usize,
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Per-pass accounting, in configured pass order.
    pub passes: Vec<PassStats>,
}

/// Outcome of one proof obligation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStatus {
    /// The rewrite was proven equivalent and applied. `clamped` records
    /// whether trip counts were reduced to bound the symbolic replay.
    Verified {
        /// Whether `REPEAT` counts were clamped for the replay.
        clamped: bool,
    },
    /// The proof failed (or the pass errored); the rewrite was rolled
    /// back.
    RolledBack {
        /// Validator/pass failure message.
        reason: String,
    },
}

/// One discharged (or failed) proof obligation: a pass proposed a
/// rewrite, and the translation validator ruled on it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RewriteProof {
    /// Pass that proposed the rewrite.
    pub pass: &'static str,
    /// 1-based fixpoint round.
    pub round: usize,
    /// Absolute measurement-record indices the rewrite sign-flips
    /// (relative to the pass-input circuit; layout is invariant).
    pub flips: Vec<usize>,
    /// How the obligation was discharged.
    pub status: ProofStatus,
}

/// What [`optimize`] returns: the (possibly unchanged) circuit, the
/// report, and the proof trail.
#[derive(Clone, Debug)]
pub struct OptResult {
    /// The optimized circuit. Semantics: detector and observable
    /// distributions are preserved exactly; raw measurement records are
    /// preserved up to [`OptResult::flipped_records`] and the symbols of
    /// stripped invisible noise.
    pub circuit: Circuit,
    /// Accounting summary.
    pub report: OptReport,
    /// One entry per proposed rewrite, in application order.
    pub proof: Vec<RewriteProof>,
    /// Internal diagnostics (`SP100`) for rolled-back rewrites. Empty on
    /// a healthy run.
    pub diagnostics: Vec<Diagnostic>,
    /// Net set of measurement records whose recorded sign differs from
    /// the input circuit's, sorted ascending.
    pub flipped_records: Vec<usize>,
}

impl OptResult {
    /// Whether any rewrite was applied.
    #[must_use]
    pub fn changed(&self) -> bool {
        self.report.passes.iter().any(|p| p.applications > 0)
    }
}

fn rollback_diag(pass: &'static str, reason: &str) -> Diagnostic {
    Diagnostic {
        code: ROLLBACK_CODE,
        severity: Severity::Warning,
        line: None,
        path: Vec::new(),
        message: format!("optimizer pass '{pass}' rolled back: {reason}"),
        help: ROLLBACK_HELP,
        payload: None,
    }
}

/// Runs the default pass list (strip, fuse, propagate) to fixpoint with
/// per-rewrite translation validation.
#[must_use]
pub fn optimize(circuit: &Circuit) -> OptResult {
    optimize_with(circuit, &OptConfig::default())
}

/// Runs a configured pass list to fixpoint with per-rewrite translation
/// validation. See the module docs for rollback semantics.
#[must_use]
pub fn optimize_with(circuit: &Circuit, config: &OptConfig) -> OptResult {
    let before = circuit.stats();
    let mut current = circuit.clone();
    let mut stats: Vec<PassStats> = Vec::new();
    for &pass in &config.passes {
        if !stats.iter().any(|s| s.pass == pass.name()) {
            stats.push(PassStats {
                pass: pass.name(),
                ..PassStats::default()
            });
        }
    }
    let mut proofs: Vec<RewriteProof> = Vec::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut flipped: HashSet<usize> = HashSet::new();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let mut changed_this_round = false;
        for &pass in &config.passes {
            let slot = stats
                .iter()
                .position(|s| s.pass == pass.name())
                .expect("stats seeded for every configured pass");
            let change = match pass.run(&current) {
                Ok(None) => continue,
                Ok(Some(change)) => change,
                Err(reason) => {
                    diagnostics.push(rollback_diag(pass.name(), &reason));
                    proofs.push(RewriteProof {
                        pass: pass.name(),
                        round: rounds,
                        flips: Vec::new(),
                        status: ProofStatus::RolledBack { reason },
                    });
                    stats[slot].rollbacks += 1;
                    continue;
                }
            };
            let abs_flips = match rewrite::absolute_flips(&current, &change.flips) {
                Ok(abs) => abs,
                Err(reason) => {
                    diagnostics.push(rollback_diag(pass.name(), &reason));
                    proofs.push(RewriteProof {
                        pass: pass.name(),
                        round: rounds,
                        flips: Vec::new(),
                        status: ProofStatus::RolledBack { reason },
                    });
                    stats[slot].rollbacks += 1;
                    continue;
                }
            };
            match verify::rewrite_equiv_check(
                &current,
                &change.circuit,
                &change.flips,
                &change.removed_noise_paths,
            ) {
                Ok(clamped) => {
                    let old = current.stats();
                    let new = change.circuit.stats();
                    let s = &mut stats[slot];
                    s.applications += 1;
                    s.gates_removed += old.gates.saturating_sub(new.gates);
                    s.noise_sites_removed += old.noise_sites.saturating_sub(new.noise_sites);
                    s.sign_flips += abs_flips.len();
                    s.detail += change.detail;
                    for r in &abs_flips {
                        // Two flips of one record cancel.
                        if !flipped.remove(r) {
                            flipped.insert(*r);
                        }
                    }
                    proofs.push(RewriteProof {
                        pass: pass.name(),
                        round: rounds,
                        flips: abs_flips,
                        status: ProofStatus::Verified { clamped },
                    });
                    current = change.circuit;
                    changed_this_round = true;
                }
                Err(reason) => {
                    diagnostics.push(rollback_diag(pass.name(), &reason));
                    proofs.push(RewriteProof {
                        pass: pass.name(),
                        round: rounds,
                        flips: abs_flips,
                        status: ProofStatus::RolledBack { reason },
                    });
                    stats[slot].rollbacks += 1;
                }
            }
        }
        if !changed_this_round || rounds >= MAX_ROUNDS {
            break;
        }
    }
    let after = current.stats();
    let mut flipped_records: Vec<usize> = flipped.into_iter().collect();
    flipped_records.sort_unstable();
    OptResult {
        circuit: current,
        report: OptReport {
            gates_before: before.gates,
            gates_after: after.gates,
            noise_sites_before: before.noise_sites,
            noise_sites_after: after.noise_sites,
            measurements: circuit.num_measurements(),
            rounds,
            passes: stats,
        },
        proof: proofs,
        diagnostics,
        flipped_records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Circuit {
        Circuit::parse(text).unwrap()
    }

    #[test]
    fn optimize_is_identity_on_minimal_circuits() {
        let c = parse("H 0\nCX 0 1\nM 0 1\nDETECTOR rec[-1] rec[-2]\n");
        let r = optimize(&c);
        assert_eq!(r.circuit, c);
        assert!(!r.changed());
        assert!(r.diagnostics.is_empty());
        assert!(r.flipped_records.is_empty());
    }

    #[test]
    fn optimize_composes_passes_across_rounds() {
        // S S on qubit 0 fuses to Z, which the next round's propagate
        // absorbs into a sign flip of the (unreferenced) measurement.
        let c = parse("S 0\nS 0\nM 0\n");
        let r = optimize(&c);
        assert_eq!(r.report.gates_after, 0, "{}", r.circuit);
        assert!(r.diagnostics.is_empty());
        assert!(r
            .proof
            .iter()
            .all(|p| matches!(p.status, ProofStatus::Verified { .. })));
        // Z commutes with M: no flip expected, just deletion.
        assert!(r.flipped_records.is_empty());
    }

    #[test]
    fn optimize_flips_unreferenced_records() {
        let c = parse("X 0\nM 0\n");
        let r = optimize(&c);
        assert_eq!(r.report.gates_after, 0);
        assert_eq!(r.flipped_records, vec![0]);
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn broken_rule_is_rolled_back_with_sp100() {
        let c = parse("H 0\nM 0\n");
        let config = OptConfig {
            passes: vec![Pass::BrokenForTests],
        };
        let r = optimize_with(&c, &config);
        assert_eq!(r.circuit, c, "rollback must keep the input circuit");
        assert!(!r.changed());
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].code, ROLLBACK_CODE);
        assert!(matches!(r.proof[0].status, ProofStatus::RolledBack { .. }));
        assert_eq!(r.report.passes[0].rollbacks, 1);
    }

    #[test]
    fn optimize_is_idempotent_on_a_mixed_circuit() {
        let c = parse("H 0\nH 0\nX 1\nX_ERROR(0.1) 2\nS 2\nM 0 1 2\nDETECTOR rec[-3]\n");
        let once = optimize(&c);
        let twice = optimize(&once.circuit);
        assert_eq!(once.circuit, twice.circuit);
        assert!(!twice.changed(), "{:?}", twice.report);
    }
}
