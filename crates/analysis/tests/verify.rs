//! Adversarial verification corpus: tricky circuits through the
//! dead-code checks plus a concrete tableau cross-check.
//!
//! `dead_gate_check` proves every `SP001` finding sound by stripping the
//! flagged instructions and comparing the symbolic measurement, detector
//! and observable matrices row by row. `dead_noise_check` proves every
//! `SP002` finding's symbols never reach a detector or observable row.
//! Here both run over circuits built to stress the analyses: REPEAT
//! fixpoints with cross-iteration lookbacks, basis-general collapses,
//! MPP, feedback, correlated chains, and two-qubit entanglers.

use symphase_analysis::{lint, lint_text, optimize, verify, ProofStatus};
use symphase_circuit::{Circuit, Instruction};
use symphase_tableau::reference_sample;

/// Circuits that stress every transfer-function path. Each must parse,
/// and both verification checks must pass whether or not anything is
/// flagged.
const CORPUS: &[(&str, &str)] = &[
    (
        "trailing gates after the last measurement",
        "H 0\nCX 0 1\nM 0 1\nH 0\nS 1\nCZ 0 1\n",
    ),
    (
        "commuting gate before a collapse",
        "Z 0\nM 0\nDETECTOR rec[-1]\n",
    ),
    (
        "basis-general collapses",
        "RX 0\nRY 1\nZ_ERROR(0.1) 0 1\nMX 0\nMY 1\nMRX 0\nMRY 1\nDETECTOR rec[-4] rec[-2]\nDETECTOR rec[-3] rec[-1]\n",
    ),
    (
        "mpp products with dead trailing noise",
        "RX 0 1 2\nZ_ERROR(0.05) 0 1 2\nMPP X0*X1 X1*X2\nDETECTOR rec[-2]\nDETECTOR rec[-1]\nZ_ERROR(0.05) 0 1 2\nMX 0 1 2\n",
    ),
    (
        "classical feedback keeps upstream noise alive",
        "X_ERROR(0.1) 0\nM 0\nCX rec[-1] 1\nM 1\nDETECTOR rec[-1]\n",
    ),
    (
        "correlated chain with else branches",
        "E(0.1) X0 X1\nELSE_CORRELATED_ERROR(0.2) Z0\nELSE_CORRELATED_ERROR(0.3) Y1\nM 0 1\nDETECTOR rec[-2]\nOBSERVABLE_INCLUDE(0) rec[-1]\n",
    ),
    (
        "repeat with cross-iteration lookbacks",
        "R 0 1\nX_ERROR(0.1) 0\nM 0\nREPEAT 5 {\n    X_ERROR(0.1) 0\n    M 0\n    DETECTOR rec[-1] rec[-2]\n    H 1\n    H 1\n}\nM 1\n",
    ),
    (
        "repeat whose body is entirely dead after the last reference",
        "X_ERROR(0.1) 0\nM 0\nDETECTOR rec[-1]\nREPEAT 4 {\n    H 0\n    X_ERROR(0.1) 0\n    M 0\n}\n",
    ),
    (
        "two-qubit gates straddling live and dead qubits",
        "H 0\nCX 0 1\nCX 0 2\nM 1\nDETECTOR rec[-1]\nSWAP 0 2\nCZ 0 2\n",
    ),
    (
        "pauli channels of every arity",
        "PAULI_CHANNEL_1(0.01, 0.02, 0.03) 0\nDEPOLARIZE2(0.1) 0 1\nPAULI_CHANNEL_2(0,0,0,0,0,0,0.01,0,0,0,0,0,0,0,0.02) 0 1\nM 0 1\nDETECTOR rec[-2] rec[-1]\n",
    ),
    (
        "measure-reset recycling an ancilla",
        "R 2\nCX 0 2\nMR 2\nCX 1 2\nMR 2\nDETECTOR rec[-2] rec[-1]\nX_ERROR(0.25) 2\n",
    ),
    (
        "noise dead only in the detector basis",
        "R 0\nZ_ERROR(0.3) 0\nM 0\nDETECTOR rec[-1]\n",
    ),
];

#[test]
fn corpus_passes_both_dead_code_checks() {
    for (name, text) in CORPUS {
        let circuit = Circuit::parse(text).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        verify::dead_gate_check(&circuit)
            .unwrap_or_else(|e| panic!("{name}: dead-gate check: {e}"));
        verify::dead_noise_check(&circuit)
            .unwrap_or_else(|e| panic!("{name}: dead-noise check: {e}"));
    }
}

#[test]
fn corpus_flags_where_expected() {
    // Spot-check that the corpus actually exercises the analyses — at
    // least these entries must flag something dead.
    for (name, code) in [
        ("trailing gates after the last measurement", "SP001"),
        ("commuting gate before a collapse", "SP001"),
        ("mpp products with dead trailing noise", "SP002"),
        (
            "repeat whose body is entirely dead after the last reference",
            "SP002",
        ),
        ("noise dead only in the detector basis", "SP002"),
    ] {
        let text = CORPUS
            .iter()
            .find(|(n, _)| n == &name)
            .expect("corpus entry")
            .1;
        let diags = lint_text(text);
        assert!(
            diags.iter().any(|d| d.code == code),
            "{name}: expected {code}, got {diags:?}"
        );
    }
}

/// Resolves a structural diagnostic path to the instruction it names.
fn instr_at<'a>(circuit: &'a Circuit, path: &[usize]) -> &'a Instruction {
    let mut instrs = circuit.instructions();
    let (last, prefix) = path.split_last().expect("non-empty path");
    for &i in prefix {
        match &instrs[i] {
            Instruction::Repeat { body, .. } => instrs = body.instructions(),
            other => panic!("path descends through non-repeat {other:?}"),
        }
    }
    &instrs[*last]
}

/// The optimizer over the adversarial corpus: every proposed rewrite
/// must discharge its translation-validation proof (no `SP100`
/// rollbacks), and the fixpoint output must re-lint clean of everything
/// the passes claim to remove — `SP001`, `SP011`, and `SP002` except on
/// correlated-error chain elements, which the strip pass only removes
/// suffix-first (deleting a middle element would change the firing
/// condition of the surviving later elements).
#[test]
fn optimizer_discharges_every_proof_on_the_corpus() {
    for (name, text) in CORPUS {
        let circuit = Circuit::parse(text).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        let result = optimize(&circuit);
        for proof in &result.proof {
            assert!(
                matches!(proof.status, ProofStatus::Verified { .. }),
                "{name}: rolled back {proof:?}"
            );
        }
        assert!(
            result.diagnostics.is_empty(),
            "{name}: {:?}",
            result.diagnostics
        );
        for d in lint(&result.circuit) {
            match d.code {
                "SP001" | "SP011" => panic!("{name}: optimized output still flags {d:?}"),
                "SP002" => assert!(
                    matches!(
                        instr_at(&result.circuit, &d.path),
                        Instruction::CorrelatedError { .. }
                    ),
                    "{name}: optimized output still flags strippable noise {d:?}"
                ),
                _ => {}
            }
        }
    }
}

/// Concrete cross-check of the optimizer's flip ledger against the
/// tableau simulator: the optimized circuit's reference sample must
/// equal the original's at every record, XOR'd with membership in
/// `flipped_records`. (Random records are forced to 0 on both sides and
/// are never flipped; deterministic records carry the toggled constant.)
#[test]
fn optimizer_preserves_reference_samples_up_to_declared_flips() {
    let redundant: &[&str] = &[
        // A flip plus strippable trailing gates.
        "X 0\nM 0\nM 1\nH 1\nH 1\n",
        // The frame conjugates through CX and flips both records.
        "R 0 1\nX 0\nCX 0 1\nM 0 1\n",
        // Paulis created by fusion (S·S → Z) feed the next round.
        "S 0\nS 0\nM 0\nZ 1\nH 1\nM 1\n",
        // Flip after a collapse, with a live detector barring record 0.
        "M 0\nX 0\nM 0\nM 1\nDETECTOR rec[-3]\n",
    ];
    for text in CORPUS
        .iter()
        .map(|(_, t)| *t)
        .chain(redundant.iter().copied())
    {
        let circuit = Circuit::parse(text).expect("parse");
        let result = optimize(&circuit);
        let before = reference_sample(&circuit);
        let after = reference_sample(&result.circuit);
        assert_eq!(before.len(), after.len(), "{text}");
        for m in 0..before.len() {
            assert_eq!(
                after.get(m),
                before.get(m) ^ result.flipped_records.contains(&m),
                "record {m} of:\n{text}"
            );
        }
    }
}

/// Concrete (non-symbolic) cross-check against the tableau simulator:
/// stripping `SP001` findings from a noiseless circuit leaves the
/// deterministic reference sample bit-for-bit identical.
#[test]
fn stripping_dead_gates_preserves_reference_samples() {
    for text in [
        "H 0\nCX 0 1\nM 0 1\nH 0\nCZ 0 1\n",
        "Z 0\nM 0\nX 1\nM 1\nS 0\nS_DAG 1\n",
        "RX 0 1\nMPP X0*X1\nZ 0\nZ 1\nMX 0 1\nSQRT_X 0\n",
        "R 0 1 2\nX 1\nREPEAT 3 {\n    CX 0 1\n    M 1\n    H 2\n    H 2\n}\nM 0\n",
    ] {
        let circuit = Circuit::parse(text).expect("parse");
        let dead: std::collections::HashSet<Vec<usize>> = lint_text(text)
            .into_iter()
            .filter(|d| d.code == "SP001")
            .map(|d| d.path)
            .collect();
        assert!(!dead.is_empty(), "no dead gates in:\n{text}");
        let stripped = verify::strip_paths(&circuit, &dead).expect("strip");
        assert_eq!(
            reference_sample(&circuit),
            reference_sample(&stripped),
            "reference sample changed after stripping dead gates:\n{text}"
        );
    }
}
