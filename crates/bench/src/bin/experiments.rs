//! Experiment harness: regenerates the paper's tables and figures as text
//! series (EXPERIMENTS.md records its output).
//!
//! Usage:
//!
//! ```text
//! experiments all                      # everything at default sizes
//! experiments fig3a [--max-n 384] [--shots 10000]
//! experiments fig3b [--max-n 192]
//! experiments fig3c [--max-n 192]
//! experiments table1 [--n 64]
//! experiments fig2  [--size 2048]
//! experiments ablation [--n 96]
//! experiments sampling [--n 64] [--shots 10000]
//! experiments opt [--n 64] [--shots 10000]
//! experiments par [--n 96] [--shots 1048576] [--strict]
//! experiments serve [--n 64] [--shots 1048576]
//! experiments scale [--max-rounds 100000] [--shots 256]
//! experiments bench-json [--out BENCH_7.json] [--simd scalar|avx2|avx512]
//!                        [--n 64] [--shots 20000] [--kernel-shots 4096]
//!                        [--threads N]
//! experiments bench-check [--baseline BENCH_6.json] [--tolerance 25]
//!                         [--shots 20000]
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase::backend::build_sampler;
use symphase::sampler_api::{sink, CountingSink};
use symphase_bench::json::Json;
use symphase_bench::perf::{self, PerfConfig};
use symphase_bench::{
    measure_fig3_point, measure_scale_point, secs, table1_circuit, EngineKind, SimConfig, Workload,
    PAPER_SHOTS,
};
use symphase_bitmat::layout::{ChpLayout, StimLayout, SymLayout512, TableauLayout};
use symphase_bitmat::simd::SimdLevel;
use symphase_core::{PhaseRepr, SamplingMethod, SymPhaseSampler};
use symphase_frame::FrameSampler;

fn arg_value(args: &[String], key: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn arg_str<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn arg_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

/// The `BENCH_<k>.json` reports committed at the repo root (current
/// directory), ordered by index.
fn bench_reports() -> Vec<(usize, String)> {
    let mut out = Vec::new();
    if let Ok(dir) = std::fs::read_dir(".") {
        for entry in dir.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(k) = name
                .strip_prefix("BENCH_")
                .and_then(|s| s.strip_suffix(".json"))
                .and_then(|s| s.parse::<usize>().ok())
            {
                out.push((k, name));
            }
        }
    }
    out.sort();
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let shots = arg_value(&args, "--shots").unwrap_or(PAPER_SHOTS);
    match what {
        "fig3a" => fig3(
            Workload::Fig3a,
            arg_value(&args, "--max-n").unwrap_or(384),
            shots,
        ),
        "fig3b" => fig3(
            Workload::Fig3b,
            arg_value(&args, "--max-n").unwrap_or(192),
            shots,
        ),
        "fig3c" => fig3(
            Workload::Fig3c,
            arg_value(&args, "--max-n").unwrap_or(192),
            shots,
        ),
        "table1" => table1(arg_value(&args, "--n").unwrap_or(64), shots),
        "fig2" => fig2(arg_value(&args, "--size").unwrap_or(2048)),
        "ablation" => ablation(arg_value(&args, "--n").unwrap_or(96), shots),
        "sampling" => sampling(arg_value(&args, "--n").unwrap_or(64), shots),
        "opt" => opt_ablation(arg_value(&args, "--n").unwrap_or(64), shots),
        "par" => par_scaling(
            arg_value(&args, "--n").unwrap_or(96),
            arg_value(&args, "--shots").unwrap_or(1 << 20),
            arg_flag(&args, "--strict"),
        ),
        "serve" => serve_scaling(
            arg_value(&args, "--n").unwrap_or(64),
            arg_value(&args, "--shots").unwrap_or(1 << 20),
        ),
        "bench-json" => bench_json(&args),
        "bench-check" => bench_check(&args),
        "scale" => scale(
            arg_value(&args, "--max-rounds").unwrap_or(100_000),
            arg_value(&args, "--shots").unwrap_or(256),
        ),
        "all" => {
            fig3(Workload::Fig3a, 256, shots);
            fig3(Workload::Fig3b, 160, shots);
            fig3(Workload::Fig3c, 160, shots);
            table1(64, shots);
            fig2(2048);
            ablation(96, shots);
            sampling(64, shots);
            opt_ablation(64, shots);
            par_scaling(96, 1 << 20, false);
            serve_scaling(64, 1 << 20);
            scale(20_000, 256);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(2);
        }
    }
}

/// Fig. 3a/3b/3c: init time and time to generate `shots` samples vs n.
fn fig3(workload: Workload, max_n: usize, shots: usize) {
    println!(
        "\n== {} : layered random circuits, {shots} samples ==",
        workload.name()
    );
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "n", "gates", "meas", "sym_init_s", "frame_init_s", "sym_smp_s", "frame_smp_s"
    );
    let mut n = 32;
    while n <= max_n {
        let c = workload.circuit(n, 0xF16_3000 + n as u64);
        let stats = c.stats();
        let p = measure_fig3_point(workload, n, shots);
        println!(
            "{:>6} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
            n,
            stats.gates,
            stats.measurements,
            secs(p.symphase_init),
            secs(p.frame_init),
            secs(p.symphase_sample),
            secs(p.frame_sample)
        );
        n *= 2;
    }
    println!("shape check: sym_smp vs frame_smp is the paper's headline comparison.");
}

/// Table 1: sampling-time dependence on the gate count n_g.
fn table1(n: usize, shots: usize) {
    println!("\n== table1 : sampling cost vs extra gates (n={n}, {shots} samples) ==");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "layers", "gates", "sym_init_s", "sym_smp_s", "frame_init_s", "frame_smp_s"
    );
    for extra in [0usize, 16, 32, 64, 128, 256] {
        let c = table1_circuit(n, extra, 11);
        let stats = c.stats();

        let t = Instant::now();
        let sym = SymPhaseSampler::new(&c);
        let sym_init = t.elapsed();
        let t = Instant::now();
        let s = sym.sample(shots, &mut StdRng::seed_from_u64(1));
        let sym_smp = t.elapsed();
        std::hint::black_box(s.count_ones());

        let t = Instant::now();
        let frame = FrameSampler::new(&c);
        let frame_init = t.elapsed();
        let t = Instant::now();
        let f = frame.sample(shots, &mut StdRng::seed_from_u64(2));
        let frame_smp = t.elapsed();
        std::hint::black_box(f.count_ones());

        println!(
            "{:>8} {:>10} {:>12} {:>12} {:>12} {:>12}",
            extra,
            stats.gates,
            secs(sym_init),
            secs(sym_smp),
            secs(frame_init),
            secs(frame_smp)
        );
    }
    println!("expected shape (Table 1): sym_smp flat in gates; frame_smp grows ~linearly.");
}

/// Fig. 2: column-op / row-op / mode-switch throughput per layout.
fn fig2(size: usize) {
    println!("\n== fig2 : tableau data layouts, {size}×{size} bits ==");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>16}",
        "layout", "col_ops_s", "row_ops_s", "switch_s", "mixed_epoch_s"
    );
    fig2_one::<ChpLayout>(size);
    fig2_one::<StimLayout>(size);
    fig2_one::<SymLayout512>(size);
    println!("expected shape (paper §4): chp wins row ops, loses col ops; the");
    println!("blocked layouts win col ops; local transposition (symphase) makes");
    println!("mode switches cheaper than stim's full transpose.");
}

fn fig2_one<L: TableauLayout>(size: usize) {
    let mut rng = StdRng::seed_from_u64(99);
    let mut l = L::zeros(size, size);
    l.fill_random(&mut rng);
    let ops = 4 * size;

    // Column operations (gate-like).
    l.ensure_col_mode();
    let t = Instant::now();
    for i in 0..ops {
        let src = (i * 7919) % size;
        let dst = (src + 1 + (i % (size - 1))) % size;
        if src != dst {
            l.xor_col_into(src, dst);
        }
    }
    let col_time = t.elapsed();

    // Row operations (measurement-like), mode switch excluded.
    l.ensure_row_mode();
    let t = Instant::now();
    for i in 0..ops {
        let src = (i * 104729) % size;
        let dst = (src + 1 + (i % (size - 1))) % size;
        if src != dst {
            l.xor_row_into(src, dst);
        }
    }
    let row_time = t.elapsed();

    // Mode switches (transpose cost), averaged over 10 round trips.
    let t = Instant::now();
    for _ in 0..10 {
        l.ensure_col_mode();
        l.ensure_row_mode();
    }
    let switch_time = t.elapsed() / 20;

    // Mixed epochs: the realistic pattern — gates, then a measurement
    // batch, then gates again.
    let t = Instant::now();
    for epoch in 0..8 {
        l.ensure_col_mode();
        for i in 0..size / 4 {
            let src = (epoch * 31 + i * 7919) % size;
            let dst = (src + 1 + i) % size;
            if src != dst {
                l.xor_col_into(src, dst);
            }
        }
        l.ensure_row_mode();
        for i in 0..size / 16 {
            let src = (epoch * 17 + i * 104729) % size;
            let dst = (src + 1 + i) % size;
            if src != dst {
                l.xor_row_into(src, dst);
            }
        }
    }
    let mixed_time = t.elapsed();

    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>16}",
        L::NAME,
        secs(col_time),
        secs(row_time),
        secs(switch_time),
        secs(mixed_time)
    );
}

/// Sampling-kernel ablation: naive vs blocked F₂ multiplication and every
/// end-to-end `SamplingMethod` on sparse and dense workloads.
fn sampling(n: usize, shots: usize) {
    println!("\n== sampling : M·B kernels, n={n}, {shots} samples ==");
    println!("{:>14} {:>12} {:>12}", "circuit", "kernel", "time_s");
    for row in symphase_bench::ablation_sampling_matrix(n, shots, 23) {
        println!(
            "{:>14} {:>12} {:>12}",
            row.circuit,
            row.kernel,
            secs(row.time)
        );
    }
    println!("expected shape: mul_blocked beats mul_naive clearly on ghz_chain");
    println!("(dense rows — the workload DenseMatMul exists for) and holds near");
    println!("parity on the sparse matrices (adaptive per-group fallback);");
    println!("hybrid wins the rare-fault circuits; auto tracks the winner.");
}

/// Optimizer ablation: the verified rewrite driver's own cost and what it
/// removed per workload, plus serial streaming throughput on the raw vs
/// the optimized circuit.
fn opt_ablation(n: usize, shots: usize) {
    println!("\n== opt : verified rewrite driver, n={n}, {shots} shots ==");
    println!(
        "{:>18} {:>10} {:>9} {:>9} {:>6} {:>7} {:>13} {:>13} {:>8}",
        "circuit",
        "opt_s",
        "gates_b",
        "gates_a",
        "flips",
        "rolled",
        "raw_shots_s",
        "opt_shots_s",
        "speedup"
    );
    for (name, circuit) in symphase_bench::perf::opt_ablation_circuits(n) {
        let t = Instant::now();
        let r = symphase::analysis::optimize(&circuit);
        let opt_s = t.elapsed();
        let rolled = r
            .proof
            .iter()
            .filter(|p| matches!(p.status, symphase::analysis::ProofStatus::RolledBack { .. }))
            .count();
        let rate = |c: &symphase_circuit::Circuit| {
            let sampler = build_sampler(c, &SimConfig::new()).expect("engine builds");
            let cfg = SimConfig::new().with_seed(1).with_threads(1);
            let mut out = CountingSink::default();
            let t = Instant::now();
            sink::stream_with_config(sampler.as_ref(), shots, &cfg, &mut out)
                .expect("counting sink cannot fail");
            std::hint::black_box(out.measurement_ones);
            shots as f64 / t.elapsed().as_secs_f64().max(1e-9)
        };
        let raw = rate(&circuit);
        let opt = rate(&r.circuit);
        println!(
            "{:>18} {:>10} {:>9} {:>9} {:>6} {:>7} {:>13.0} {:>13.0} {:>8.2}",
            name,
            secs(opt_s),
            r.report.gates_before,
            r.report.gates_after,
            r.flipped_records.len(),
            rolled,
            raw,
            opt,
            opt / raw
        );
    }
    println!("expected shape: clean workloads pay ~no throughput cost (the driver");
    println!("proves nothing removable); redundant_memory regains fused-round");
    println!("throughput, with every in-body rewrite proven on a clamped replay.");
}

/// Multi-core scaling of the chunk-seeded streaming path: per-thread
/// wall time and speedup for every backend, swept over thread budgets.
/// Threaded runs that come out *slower* than serial are flagged; with
/// `--strict` they fail the run (CI uses this on multi-core hosts).
fn par_scaling(n: usize, shots: usize, strict: bool) {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut budgets = vec![1usize, 2, 4];
    if !budgets.contains(&cores) {
        budgets.push(cores);
    }
    budgets.sort_unstable();
    println!(
        "\n== par : chunk-seeded parallel streaming, n={n}, {shots} shots, {cores} core(s) =="
    );
    println!(
        "{:>16} {:>8} {:>12} {:>14} {:>8}",
        "backend", "threads", "time_s", "shots_per_s", "speedup"
    );
    let mut slower_than_serial = Vec::new();
    for workload in [Workload::Fig3a, Workload::Fig3c] {
        let c = workload.circuit(n, 13);
        for kind in [workload.symphase_backend(), EngineKind::Frame] {
            let label = format!("{}/{}", workload.name(), kind.name());
            let sampler =
                build_sampler(&c, &SimConfig::new().with_engine(kind)).expect("engine builds");
            let mut serial = None;
            for &threads in &budgets {
                let cfg = SimConfig::new().with_seed(1).with_threads(threads);
                let mut out = CountingSink::default();
                let t = Instant::now();
                sink::stream_with_config(sampler.as_ref(), shots, &cfg, &mut out)
                    .expect("counting sink cannot fail");
                let time = t.elapsed();
                std::hint::black_box(out.measurement_ones);
                let serial_time = *serial.get_or_insert(time);
                let speedup = serial_time.as_secs_f64() / time.as_secs_f64().max(1e-9);
                println!(
                    "{:>16} {:>8} {:>12} {:>14.0} {:>8.2}",
                    label,
                    threads,
                    secs(time),
                    shots as f64 / time.as_secs_f64().max(1e-9),
                    speedup
                );
                if threads > 1 && speedup < 1.0 {
                    slower_than_serial.push(format!("{label} @{threads} threads ({speedup:.2}x)"));
                }
            }
        }
    }
    println!("outputs are bit-identical across every thread budget (the streaming");
    println!("sink sees the same chunk-seeded schedule; pinned by tests/streaming.rs).");
    if !slower_than_serial.is_empty() {
        eprintln!("warning: parallel streaming slower than serial on:");
        for line in &slower_than_serial {
            eprintln!("  {line}");
        }
        eprintln!(
            "({cores} core(s) available — oversubscription overhead is expected on \
             few-core hosts; see docs/performance.md)"
        );
        if strict {
            std::process::exit(1);
        }
    }
}

/// Daemon scaling: `symphase serve` over loopback vs the offline path,
/// swept over worker counts — cold first-request latency (parse +
/// initialization), warm-cache request latency, and aggregate shots/s
/// with the run sharded across that many concurrent clients.
fn serve_scaling(n: usize, shots: usize) {
    println!("\n== serve : loopback sampling daemon vs offline, n={n}, ~{shots} shots ==");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>16} {:>16} {:>8}",
        "workers",
        "cold_req_s",
        "warm_req_s",
        "warm_req_ps",
        "served_shots_s",
        "offline_shots_s",
        "speedup"
    );
    for workers in [1usize, 2, 8] {
        let p = symphase_bench::perf::serve_bench(n, shots, workers);
        println!(
            "{:>8} {:>12.6} {:>12.6} {:>12.0} {:>16.0} {:>16.0} {:>8.2}",
            p.workers,
            p.cold_first_request_s,
            p.warm_request_s,
            1.0 / p.warm_request_s.max(1e-9),
            p.sharded_shots_per_sec,
            p.offline_shots_per_sec,
            p.sharded_shots_per_sec / p.offline_shots_per_sec
        );
    }
    println!("expected shape: cold pays initialization once, warm requests are");
    println!("loopback + one chunk of streaming; sharded throughput approaches");
    println!("(and with enough workers exceeds) serial offline streaming, since");
    println!("every shard replays the same global chunk-seeded schedule.");
}

/// `bench-json`: runs the kernel + end-to-end matrix and writes a
/// schema'd `BENCH_<k>.json` report (defaults to the next free index at
/// the repo root — the tracked performance trajectory).
fn bench_json(args: &[String]) {
    let mut cfg = PerfConfig::default();
    if let Some(n) = arg_value(args, "--n") {
        cfg.n = n;
    }
    if let Some(shots) = arg_value(args, "--shots") {
        cfg.stream_shots = shots;
    }
    if let Some(shots) = arg_value(args, "--kernel-shots") {
        cfg.kernel_shots = shots;
    }
    if let Some(threads) = arg_value(args, "--threads") {
        if !cfg.thread_counts.contains(&threads) {
            cfg.thread_counts.push(threads);
            cfg.thread_counts.sort_unstable();
        }
    }
    if let Some(name) = arg_str(args, "--simd") {
        match SimdLevel::from_name(name) {
            Some(level) => cfg = cfg.with_simd(level),
            None => {
                eprintln!("unknown SIMD level '{name}' (scalar|avx2|avx512)");
                std::process::exit(2);
            }
        }
    }
    let out_path = arg_str(args, "--out")
        .map(str::to_owned)
        .unwrap_or_else(|| {
            let next = bench_reports().last().map_or(1, |(k, _)| k + 1);
            format!("BENCH_{next}.json")
        });
    let report = perf::run_perf_report(&cfg);
    std::fs::write(&out_path, report.render()).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
    for row in report
        .get("end_to_end")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
    {
        println!(
            "  {:>14} @{} threads: {:.0} shots/s",
            row.get("circuit").and_then(Json::as_str).unwrap_or("?"),
            row.get("threads").and_then(Json::as_f64).unwrap_or(0.0),
            row.get("shots_per_sec")
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        );
    }
}

/// `bench-check`: the regression gate. Re-measures serial `surface_d5`
/// streaming throughput against the committed baseline (newest
/// `BENCH_<k>.json` unless `--baseline` names one) and exits non-zero
/// when it falls more than `--tolerance` percent (default 25) below.
fn bench_check(args: &[String]) {
    let baseline_path = arg_str(args, "--baseline")
        .map(str::to_owned)
        .or_else(|| bench_reports().pop().map(|(_, name)| name))
        .unwrap_or_else(|| {
            eprintln!("no BENCH_<k>.json baseline found (pass --baseline)");
            std::process::exit(2);
        });
    let tolerance = arg_value(args, "--tolerance").unwrap_or(25) as f64;
    let shots = arg_value(args, "--shots").unwrap_or(20_000);
    let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("cannot read {baseline_path}: {e}");
        std::process::exit(2);
    });
    let baseline = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{baseline_path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    match perf::check_regression(&baseline, tolerance, shots) {
        Ok(line) => println!("bench-check PASS vs {baseline_path}: {line}"),
        Err(line) => {
            eprintln!("bench-check FAIL vs {baseline_path}: {line}");
            std::process::exit(1);
        }
    }
}

/// Deep-memory scale series: parse + initialize + sample a structured
/// `REPEAT` surface-code memory at doubling round counts. Parse time must
/// stay flat (O(file)); initialization and sampling grow linearly with
/// the flattened length that is never materialized.
fn scale(max_rounds: usize, shots: usize) {
    println!("\n== scale : structured REPEAT deep memory (d=3, measure noise), {shots} shots ==");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12}",
        "rounds", "meas", "parse_s", "init_s", "sample_s"
    );
    let mut rounds = 1_000;
    while rounds <= max_rounds {
        let p = measure_scale_point(rounds, shots);
        println!(
            "{:>10} {:>10} {:>12} {:>12} {:>12}",
            p.rounds,
            8 * p.rounds + 9,
            secs(p.parse),
            secs(p.init),
            secs(p.sample)
        );
        rounds *= 4;
    }
}

/// Ablations: phase representation (A2) and sampling multiplication (A1).
fn ablation(n: usize, shots: usize) {
    println!("\n== ablation : phase store and sampling method (n={n}) ==");
    for workload in [Workload::Fig3a, Workload::Fig3c] {
        let c = workload.circuit(n, 7);
        let t = Instant::now();
        let sym_sparse = SymPhaseSampler::with_repr(&c, PhaseRepr::Sparse);
        let sparse_init = t.elapsed();
        let t = Instant::now();
        let sym_dense = SymPhaseSampler::with_repr(&c, PhaseRepr::Dense);
        let dense_init = t.elapsed();

        let t = Instant::now();
        let a = sym_sparse.sample_with_method(
            shots,
            &mut StdRng::seed_from_u64(1),
            SamplingMethod::SparseRows,
        );
        let sparse_mul = t.elapsed();
        std::hint::black_box(a.count_ones());
        // Warm the dense matrix before timing the dense method.
        let _ = sym_sparse.sample_with_method(
            64,
            &mut StdRng::seed_from_u64(2),
            SamplingMethod::DenseMatMul,
        );
        let t = Instant::now();
        let b = sym_sparse.sample_with_method(
            shots,
            &mut StdRng::seed_from_u64(3),
            SamplingMethod::DenseMatMul,
        );
        let dense_mul = t.elapsed();
        std::hint::black_box(b.count_ones());

        println!(
            "{}: init sparse {} / dense {} ; sampling sparse-mul {} / dense-mul {}",
            workload.name(),
            secs(sparse_init),
            secs(dense_init),
            secs(sparse_mul),
            secs(dense_mul)
        );
        let _ = sym_dense;
    }
    println!("expected shape: sparse phases win sparse workloads (fig3a),");
    println!("dense phases win dense noisy workloads (fig3c); sparse-row");
    println!("multiplication beats dense multiplication when rows are sparse.");
}
