//! Experiment harness: regenerates the paper's tables and figures as text
//! series (EXPERIMENTS.md records its output).
//!
//! Usage:
//!
//! ```text
//! experiments all                      # everything at default sizes
//! experiments fig3a [--max-n 384] [--shots 10000]
//! experiments fig3b [--max-n 192]
//! experiments fig3c [--max-n 192]
//! experiments table1 [--n 64]
//! experiments fig2  [--size 2048]
//! experiments ablation [--n 96]
//! experiments sampling [--n 64] [--shots 10000]
//! experiments scale [--max-rounds 100000] [--shots 256]
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase_bench::{
    measure_fig3_point, measure_scale_point, secs, table1_circuit, time_backend_par,
    time_backend_stream, EngineKind, Workload, PAPER_SHOTS,
};
use symphase_bitmat::layout::{ChpLayout, StimLayout, SymLayout512, TableauLayout};
use symphase_core::{PhaseRepr, SamplingMethod, SymPhaseSampler};
use symphase_frame::FrameSampler;

fn arg_value(args: &[String], key: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let shots = arg_value(&args, "--shots").unwrap_or(PAPER_SHOTS);
    match what {
        "fig3a" => fig3(
            Workload::Fig3a,
            arg_value(&args, "--max-n").unwrap_or(384),
            shots,
        ),
        "fig3b" => fig3(
            Workload::Fig3b,
            arg_value(&args, "--max-n").unwrap_or(192),
            shots,
        ),
        "fig3c" => fig3(
            Workload::Fig3c,
            arg_value(&args, "--max-n").unwrap_or(192),
            shots,
        ),
        "table1" => table1(arg_value(&args, "--n").unwrap_or(64), shots),
        "fig2" => fig2(arg_value(&args, "--size").unwrap_or(2048)),
        "ablation" => ablation(arg_value(&args, "--n").unwrap_or(96), shots),
        "sampling" => sampling(arg_value(&args, "--n").unwrap_or(64), shots),
        "par" => par_scaling(
            arg_value(&args, "--n").unwrap_or(96),
            arg_value(&args, "--shots").unwrap_or(1 << 20),
        ),
        "scale" => scale(
            arg_value(&args, "--max-rounds").unwrap_or(100_000),
            arg_value(&args, "--shots").unwrap_or(256),
        ),
        "all" => {
            fig3(Workload::Fig3a, 256, shots);
            fig3(Workload::Fig3b, 160, shots);
            fig3(Workload::Fig3c, 160, shots);
            table1(64, shots);
            fig2(2048);
            ablation(96, shots);
            sampling(64, shots);
            par_scaling(96, 1 << 20);
            scale(20_000, 256);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(2);
        }
    }
}

/// Fig. 3a/3b/3c: init time and time to generate `shots` samples vs n.
fn fig3(workload: Workload, max_n: usize, shots: usize) {
    println!(
        "\n== {} : layered random circuits, {shots} samples ==",
        workload.name()
    );
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "n", "gates", "meas", "sym_init_s", "frame_init_s", "sym_smp_s", "frame_smp_s"
    );
    let mut n = 32;
    while n <= max_n {
        let c = workload.circuit(n, 0xF16_3000 + n as u64);
        let stats = c.stats();
        let p = measure_fig3_point(workload, n, shots);
        println!(
            "{:>6} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
            n,
            stats.gates,
            stats.measurements,
            secs(p.symphase_init),
            secs(p.frame_init),
            secs(p.symphase_sample),
            secs(p.frame_sample)
        );
        n *= 2;
    }
    println!("shape check: sym_smp vs frame_smp is the paper's headline comparison.");
}

/// Table 1: sampling-time dependence on the gate count n_g.
fn table1(n: usize, shots: usize) {
    println!("\n== table1 : sampling cost vs extra gates (n={n}, {shots} samples) ==");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "layers", "gates", "sym_init_s", "sym_smp_s", "frame_init_s", "frame_smp_s"
    );
    for extra in [0usize, 16, 32, 64, 128, 256] {
        let c = table1_circuit(n, extra, 11);
        let stats = c.stats();

        let t = Instant::now();
        let sym = SymPhaseSampler::new(&c);
        let sym_init = t.elapsed();
        let t = Instant::now();
        let s = sym.sample(shots, &mut StdRng::seed_from_u64(1));
        let sym_smp = t.elapsed();
        std::hint::black_box(s.count_ones());

        let t = Instant::now();
        let frame = FrameSampler::new(&c);
        let frame_init = t.elapsed();
        let t = Instant::now();
        let f = frame.sample(shots, &mut StdRng::seed_from_u64(2));
        let frame_smp = t.elapsed();
        std::hint::black_box(f.count_ones());

        println!(
            "{:>8} {:>10} {:>12} {:>12} {:>12} {:>12}",
            extra,
            stats.gates,
            secs(sym_init),
            secs(sym_smp),
            secs(frame_init),
            secs(frame_smp)
        );
    }
    println!("expected shape (Table 1): sym_smp flat in gates; frame_smp grows ~linearly.");
}

/// Fig. 2: column-op / row-op / mode-switch throughput per layout.
fn fig2(size: usize) {
    println!("\n== fig2 : tableau data layouts, {size}×{size} bits ==");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>16}",
        "layout", "col_ops_s", "row_ops_s", "switch_s", "mixed_epoch_s"
    );
    fig2_one::<ChpLayout>(size);
    fig2_one::<StimLayout>(size);
    fig2_one::<SymLayout512>(size);
    println!("expected shape (paper §4): chp wins row ops, loses col ops; the");
    println!("blocked layouts win col ops; local transposition (symphase) makes");
    println!("mode switches cheaper than stim's full transpose.");
}

fn fig2_one<L: TableauLayout>(size: usize) {
    let mut rng = StdRng::seed_from_u64(99);
    let mut l = L::zeros(size, size);
    l.fill_random(&mut rng);
    let ops = 4 * size;

    // Column operations (gate-like).
    l.ensure_col_mode();
    let t = Instant::now();
    for i in 0..ops {
        let src = (i * 7919) % size;
        let dst = (src + 1 + (i % (size - 1))) % size;
        if src != dst {
            l.xor_col_into(src, dst);
        }
    }
    let col_time = t.elapsed();

    // Row operations (measurement-like), mode switch excluded.
    l.ensure_row_mode();
    let t = Instant::now();
    for i in 0..ops {
        let src = (i * 104729) % size;
        let dst = (src + 1 + (i % (size - 1))) % size;
        if src != dst {
            l.xor_row_into(src, dst);
        }
    }
    let row_time = t.elapsed();

    // Mode switches (transpose cost), averaged over 10 round trips.
    let t = Instant::now();
    for _ in 0..10 {
        l.ensure_col_mode();
        l.ensure_row_mode();
    }
    let switch_time = t.elapsed() / 20;

    // Mixed epochs: the realistic pattern — gates, then a measurement
    // batch, then gates again.
    let t = Instant::now();
    for epoch in 0..8 {
        l.ensure_col_mode();
        for i in 0..size / 4 {
            let src = (epoch * 31 + i * 7919) % size;
            let dst = (src + 1 + i) % size;
            if src != dst {
                l.xor_col_into(src, dst);
            }
        }
        l.ensure_row_mode();
        for i in 0..size / 16 {
            let src = (epoch * 17 + i * 104729) % size;
            let dst = (src + 1 + i) % size;
            if src != dst {
                l.xor_row_into(src, dst);
            }
        }
    }
    let mixed_time = t.elapsed();

    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>16}",
        L::NAME,
        secs(col_time),
        secs(row_time),
        secs(switch_time),
        secs(mixed_time)
    );
}

/// Sampling-kernel ablation: naive vs blocked F₂ multiplication and every
/// end-to-end `SamplingMethod` on sparse and dense workloads.
fn sampling(n: usize, shots: usize) {
    println!("\n== sampling : M·B kernels, n={n}, {shots} samples ==");
    println!("{:>14} {:>12} {:>12}", "circuit", "kernel", "time_s");
    for row in symphase_bench::ablation_sampling_matrix(n, shots, 23) {
        println!(
            "{:>14} {:>12} {:>12}",
            row.circuit,
            row.kernel,
            secs(row.time)
        );
    }
    println!("expected shape: mul_blocked beats mul_naive clearly on ghz_chain");
    println!("(dense rows — the workload DenseMatMul exists for) and holds near");
    println!("parity on the sparse matrices (adaptive per-group fallback);");
    println!("hybrid wins the rare-fault circuits; auto tracks the winner.");
}

/// Multi-core scaling of the chunk-seeded parallel sampling path
/// (`Sampler::sample_par` vs the bit-identical serial schedule).
fn par_scaling(n: usize, shots: usize) {
    println!("\n== par : chunk-seeded parallel sampling, n={n}, {shots} shots ==");
    println!(
        "{:>16} {:>12} {:>12} {:>12} {:>8}",
        "backend", "serial_s", "par_s", "stream_s", "speedup"
    );
    for workload in [Workload::Fig3a, Workload::Fig3c] {
        let c = workload.circuit(n, 13);
        for kind in [workload.symphase_backend(), EngineKind::Frame] {
            let (serial, par) = time_backend_par(kind, &c, shots, 1);
            // The O(chunk)-memory delivery path the CLI runs: same
            // schedule, no full-batch materialization.
            let stream = time_backend_stream(kind, &c, shots, 1);
            println!(
                "{:>16} {:>12} {:>12} {:>12} {:>8.2}",
                format!("{}/{}", workload.name(), kind.name()),
                secs(serial),
                secs(par),
                secs(stream),
                serial.as_secs_f64() / par.as_secs_f64().max(1e-9)
            );
        }
    }
    println!("outputs are verified bit-identical between the serial, parallel, and");
    println!("streaming paths (the streaming sink sees the same chunk schedule).");
}

/// Deep-memory scale series: parse + initialize + sample a structured
/// `REPEAT` surface-code memory at doubling round counts. Parse time must
/// stay flat (O(file)); initialization and sampling grow linearly with
/// the flattened length that is never materialized.
fn scale(max_rounds: usize, shots: usize) {
    println!("\n== scale : structured REPEAT deep memory (d=3, measure noise), {shots} shots ==");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12}",
        "rounds", "meas", "parse_s", "init_s", "sample_s"
    );
    let mut rounds = 1_000;
    while rounds <= max_rounds {
        let p = measure_scale_point(rounds, shots);
        println!(
            "{:>10} {:>10} {:>12} {:>12} {:>12}",
            p.rounds,
            8 * p.rounds + 9,
            secs(p.parse),
            secs(p.init),
            secs(p.sample)
        );
        rounds *= 4;
    }
}

/// Ablations: phase representation (A2) and sampling multiplication (A1).
fn ablation(n: usize, shots: usize) {
    println!("\n== ablation : phase store and sampling method (n={n}) ==");
    for workload in [Workload::Fig3a, Workload::Fig3c] {
        let c = workload.circuit(n, 7);
        let t = Instant::now();
        let sym_sparse = SymPhaseSampler::with_repr(&c, PhaseRepr::Sparse);
        let sparse_init = t.elapsed();
        let t = Instant::now();
        let sym_dense = SymPhaseSampler::with_repr(&c, PhaseRepr::Dense);
        let dense_init = t.elapsed();

        let t = Instant::now();
        let a = sym_sparse.sample_with_method(
            shots,
            &mut StdRng::seed_from_u64(1),
            SamplingMethod::SparseRows,
        );
        let sparse_mul = t.elapsed();
        std::hint::black_box(a.count_ones());
        // Warm the dense matrix before timing the dense method.
        let _ = sym_sparse.sample_with_method(
            64,
            &mut StdRng::seed_from_u64(2),
            SamplingMethod::DenseMatMul,
        );
        let t = Instant::now();
        let b = sym_sparse.sample_with_method(
            shots,
            &mut StdRng::seed_from_u64(3),
            SamplingMethod::DenseMatMul,
        );
        let dense_mul = t.elapsed();
        std::hint::black_box(b.count_ones());

        println!(
            "{}: init sparse {} / dense {} ; sampling sparse-mul {} / dense-mul {}",
            workload.name(),
            secs(sparse_init),
            secs(dense_init),
            secs(sparse_mul),
            secs(dense_mul)
        );
        let _ = sym_dense;
    }
    println!("expected shape: sparse phases win sparse workloads (fig3a),");
    println!("dense phases win dense noisy workloads (fig3c); sparse-row");
    println!("multiplication beats dense multiplication when rows are sparse.");
}
