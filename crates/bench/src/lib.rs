//! Shared workload definitions and timing helpers for the benchmark
//! harness that regenerates every table and figure of the paper.
//!
//! The Criterion benches (`benches/fig3a.rs`, …) and the `experiments`
//! binary both build their circuits through this crate so that DESIGN.md's
//! experiment index points at one set of definitions.

pub mod json;
pub mod perf;

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase::backend::build_sampler;
pub use symphase::backend::{EngineKind, SimConfig};
use symphase::sampler_api::{CountingSink, Sampler};
use symphase_circuit::generators::{
    fig3a_circuit, fig3b_circuit, fig3c_circuit, noisy_ghz_chain, surface_code_memory,
    SurfaceCodeConfig,
};
use symphase_circuit::Circuit;
use symphase_core::{PhaseRepr, SamplingMethod, SymPhaseSampler};

/// Number of samples the paper's Fig. 3 timing uses.
pub const PAPER_SHOTS: usize = 10_000;

/// Depolarizing strength used for the Fig. 3c workload (the paper does not
/// state one; 0.001 is a typical circuit-level rate).
pub const FIG3C_NOISE: f64 = 0.001;

/// Which Fig. 3 workload family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Fig. 3a: 5 CNOT pairs per layer (sparse interaction).
    Fig3a,
    /// Fig. 3b: ⌊n/2⌋ CNOT pairs per layer (dense interaction).
    Fig3b,
    /// Fig. 3c: Fig. 3b plus per-qubit depolarizing each layer.
    Fig3c,
}

impl Workload {
    /// Builds the circuit for `n` qubits (and `n` layers).
    pub fn circuit(self, n: usize, seed: u64) -> Circuit {
        match self {
            Workload::Fig3a => fig3a_circuit(n, seed),
            Workload::Fig3b => fig3b_circuit(n, seed),
            Workload::Fig3c => fig3c_circuit(n, FIG3C_NOISE, seed),
        }
    }

    /// The phase representation each workload runs best with (the paper's
    /// conclusion anticipates picking the representation per circuit):
    /// sparse for the sparse-interaction family, dense otherwise.
    pub fn phase_repr(self) -> PhaseRepr {
        match self {
            Workload::Fig3a => PhaseRepr::Sparse,
            Workload::Fig3b | Workload::Fig3c => PhaseRepr::Dense,
        }
    }

    /// The SymPhase backend pinned to this workload's best representation.
    pub fn symphase_backend(self) -> EngineKind {
        match self.phase_repr() {
            PhaseRepr::Sparse => EngineKind::SymPhaseSparse,
            PhaseRepr::Dense => EngineKind::SymPhaseDense,
            PhaseRepr::Auto => EngineKind::SymPhase,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Fig3a => "fig3a",
            Workload::Fig3b => "fig3b",
            Workload::Fig3c => "fig3c",
        }
    }
}

/// Init time and batch-sampling time of one backend on one circuit, both
/// measured through the shared `Sampler` trait.
#[derive(Clone, Copy, Debug)]
pub struct BackendTiming {
    /// Backend label ([`EngineKind::name`]).
    pub label: &'static str,
    /// Time to build the sampler (the engine's initialization).
    pub init: Duration,
    /// Time to generate the shot batch.
    pub sample: Duration,
}

/// Builds `kind` for `circuit` through the configured factory, panicking
/// on the (impossible-for-bench-workloads) construction failures.
fn build(kind: EngineKind, circuit: &Circuit) -> Box<dyn Sampler> {
    build_sampler(circuit, &SimConfig::new().with_engine(kind)).expect("bench backend builds")
}

/// Times `kind` on `circuit`: build, then draw `shots` from `seed`.
pub fn time_backend(kind: EngineKind, circuit: &Circuit, shots: usize, seed: u64) -> BackendTiming {
    let t = Instant::now();
    let sampler = build(kind, circuit);
    let init = t.elapsed();
    let mut rng = StdRng::seed_from_u64(seed);
    let t = Instant::now();
    let batch = sampler.sample(shots, &mut rng);
    let sample = t.elapsed();
    std::hint::black_box(batch.measurements.count_ones());
    BackendTiming {
        label: kind.name(),
        init,
        sample,
    }
}

/// Times `kind`'s parallel chunk-seeded sampling path
/// (`Sampler::sample_par`) against the serial schedule.
pub fn time_backend_par(
    kind: EngineKind,
    circuit: &Circuit,
    shots: usize,
    seed: u64,
) -> (Duration, Duration) {
    let sampler = build(kind, circuit);
    let t = Instant::now();
    let serial = sampler.sample_seeded(shots, seed);
    let serial_time = t.elapsed();
    let t = Instant::now();
    let par = sampler.sample_par(shots, seed);
    let par_time = t.elapsed();
    assert_eq!(
        serial, par,
        "sample_par must match sample_seeded shot-for-shot"
    );
    (serial_time, par_time)
}

/// Times `kind`'s streaming path (`Sampler::sample_to` into a
/// [`CountingSink`]) — the O(chunk)-memory delivery the CLI runs —
/// returning the wall time. The delivered shot count is asserted equal
/// to the request internally.
pub fn time_backend_stream(
    kind: EngineKind,
    circuit: &Circuit,
    shots: usize,
    seed: u64,
) -> Duration {
    let sampler = build(kind, circuit);
    let mut sink = CountingSink::default();
    let t = Instant::now();
    sampler
        .sample_to(shots, seed, &mut sink)
        .expect("counting sink cannot fail");
    let time = t.elapsed();
    assert_eq!(sink.shots, shots, "stream must deliver every shot");
    std::hint::black_box(sink.measurement_ones);
    time
}

/// One measured data point of a Fig. 3 style comparison.
#[derive(Clone, Copy, Debug)]
pub struct FigPoint {
    /// Qubit (= layer) count.
    pub n: usize,
    /// Time to build the SymPhase sampler (Initialization).
    pub symphase_init: Duration,
    /// Time for SymPhase to generate the sample batch.
    pub symphase_sample: Duration,
    /// Time to build the frame sampler (reference sample).
    pub frame_init: Duration,
    /// Time for the frame baseline to generate the sample batch.
    pub frame_sample: Duration,
}

/// Measures one point of a Fig. 3 comparison (both engines through the
/// shared [`Sampler`] trait).
pub fn measure_fig3_point(workload: Workload, n: usize, shots: usize) -> FigPoint {
    let circuit = workload.circuit(n, 0xF16_3000 + n as u64);
    let sym = time_backend(workload.symphase_backend(), &circuit, shots, 1);
    let frame = time_backend(EngineKind::Frame, &circuit, shots, 2);
    FigPoint {
        n,
        symphase_init: sym.init,
        symphase_sample: sym.sample,
        frame_init: frame.init,
        frame_sample: frame.sample,
    }
}

/// The Table 1 scaling workload: a fixed measurement/noise skeleton with a
/// variable number of *extra* gate layers appended, so `n_g` sweeps while
/// `n_m` and `n_p` stay fixed.
pub fn table1_circuit(n: usize, extra_gate_layers: usize, seed: u64) -> Circuit {
    use rand::seq::SliceRandom;
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n as u32);
    let mut idx: Vec<u32> = (0..n as u32).collect();
    let layer = |c: &mut Circuit, rng: &mut StdRng, idx: &mut Vec<u32>| {
        for q in 0..n as u32 {
            if rng.random_bool(0.5) {
                c.h(q);
            } else {
                c.s(q);
            }
        }
        idx.shuffle(rng);
        c.gate(symphase_circuit::Gate::Cx, &idx[..(n / 2) * 2]);
    };
    // Skeleton: a few entangling layers, noise sites, and measurements.
    for _ in 0..4 {
        layer(&mut c, &mut rng, &mut idx);
        c.noise(symphase_circuit::NoiseChannel::XError(0.01), &[0]);
        let q = rng.random_range(0..n as u32);
        c.measure(q);
    }
    // Extra gate-only layers: these change n_g but not n_m or n_p.
    for _ in 0..extra_gate_layers {
        layer(&mut c, &mut rng, &mut idx);
    }
    c.measure_all();
    c
}

/// Formats a [`Duration`] in seconds with 4 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// The deep-memory workload of the structured-`REPEAT` scale experiment:
/// a distance-3 surface-code memory with measurement noise only. Keeping
/// the data qubits noiseless keeps every measurement expression O(1), so
/// the series isolates the cost of the streaming traversal itself —
/// accumulating data noise grows the symbolic expressions linearly with
/// depth, which is a property of phase symbolization, not of the
/// traversal. The generator emits the rounds as one `REPEAT` block, so
/// the circuit (and its text form) is O(one round) however deep the run.
pub fn deep_memory_circuit(rounds: usize) -> Circuit {
    surface_code_memory(&SurfaceCodeConfig {
        distance: 3,
        rounds,
        data_error: 0.0,
        measure_error: 0.001,
    })
}

/// One point of the deep-memory scale series: text→IR parse time (O(file)
/// with the structured parser), streaming symbolic initialization, and
/// batch sampling.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Stabilizer measurement rounds.
    pub rounds: usize,
    /// Text → structured IR.
    pub parse: Duration,
    /// Symbolic initialization (one streamed traversal).
    pub init: Duration,
    /// Time to draw the shot batch.
    pub sample: Duration,
}

/// Measures one deep-memory point end to end: generate, round-trip
/// through the text format, initialize, sample.
pub fn measure_scale_point(rounds: usize, shots: usize) -> ScalePoint {
    let text = deep_memory_circuit(rounds).to_string();
    let t = Instant::now();
    let circuit = Circuit::parse(&text).expect("generator output parses");
    let parse = t.elapsed();
    let t = Instant::now();
    let sampler = SymPhaseSampler::new(&circuit);
    let init = t.elapsed();
    let mut rng = StdRng::seed_from_u64(11);
    let t = Instant::now();
    let batch = sampler.sample_batch(shots, &mut rng);
    let sample = t.elapsed();
    std::hint::black_box(batch.detectors.count_ones());
    ScalePoint {
        rounds,
        parse,
        init,
        sample,
    }
}

/// The circuit families of the sampling-kernel ablation: a surface-code
/// memory (sparse measurement rows, rare faults), a noisy random-layered
/// circuit (the paper's Fig. 3c picture — random outcomes keep `M`
/// sparse, so this exercises the blocked kernel's adaptive fallback), and
/// a noisy GHZ chain (determined outcomes make `M` triangular-dense — the
/// workload the blocked kernel exists for).
pub fn sampling_ablation_circuits(n: usize) -> Vec<(&'static str, Circuit)> {
    vec![
        (
            "surface_d5",
            surface_code_memory(&SurfaceCodeConfig {
                distance: 5,
                rounds: 5,
                data_error: 0.001,
                measure_error: 0.001,
            }),
        ),
        ("random_layered", fig3c_circuit(n, FIG3C_NOISE, 7)),
        ("ghz_chain", noisy_ghz_chain(16 * n.max(4) as u32, 0.01)),
    ]
}

/// One measured cell of the sampling ablation matrix.
#[derive(Clone, Debug)]
pub struct SamplingAblationRow {
    /// Circuit family label.
    pub circuit: &'static str,
    /// Kernel / method label.
    pub kernel: &'static str,
    /// Wall-clock time for `shots` samples.
    pub time: Duration,
}

/// Times the sampling kernels on both ablation circuits: the naive
/// row-gather dense product vs the blocked Four-Russians kernel on the
/// *same* densified measurement matrix and assignment batch
/// (bit-identical outputs, asserted), plus each end-to-end
/// [`SamplingMethod`]. Returns one row per (circuit, kernel) cell.
pub fn ablation_sampling_matrix(n: usize, shots: usize, seed: u64) -> Vec<SamplingAblationRow> {
    let mut rows = Vec::new();
    for (name, circuit) in sampling_ablation_circuits(n) {
        let sampler = SymPhaseSampler::new(&circuit);
        let dense = sampler.measurement_matrix().to_dense();
        let b = sampler
            .symbol_table()
            .sample_assignments(shots, &mut StdRng::seed_from_u64(seed));

        let t = Instant::now();
        let naive = dense.mul(&b);
        let naive_time = t.elapsed();
        std::hint::black_box(naive.count_ones());

        let t = Instant::now();
        let blocked = dense.mul_blocked(&b);
        let blocked_time = t.elapsed();
        std::hint::black_box(blocked.count_ones());
        assert_eq!(naive, blocked, "blocked kernel diverged on {name}");

        rows.push(SamplingAblationRow {
            circuit: name,
            kernel: "mul_naive",
            time: naive_time,
        });
        rows.push(SamplingAblationRow {
            circuit: name,
            kernel: "mul_blocked",
            time: blocked_time,
        });

        // Warm every lazily-built structure outside the timed region:
        // the densified matrices and the hybrid event index.
        let _ = sampler.sample_with_method(
            64,
            &mut StdRng::seed_from_u64(0),
            SamplingMethod::DenseMatMul,
        );
        let _ =
            sampler.sample_with_method(64, &mut StdRng::seed_from_u64(0), SamplingMethod::Hybrid);
        for method in SamplingMethod::ALL {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5A);
            let t = Instant::now();
            let out = sampler.sample_with_method(shots, &mut rng, method);
            let time = t.elapsed();
            std::hint::black_box(out.count_ones());
            rows.push(SamplingAblationRow {
                circuit: name,
                kernel: method.name(),
                time,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build() {
        for w in [Workload::Fig3a, Workload::Fig3b, Workload::Fig3c] {
            let c = w.circuit(16, 1);
            assert_eq!(c.num_qubits(), 16);
            assert!(c.num_measurements() > 16);
        }
    }

    #[test]
    fn table1_circuit_scales_gates_only() {
        let a = table1_circuit(16, 0, 3);
        let b = table1_circuit(16, 10, 3);
        assert!(b.stats().gates > a.stats().gates + 100);
        assert_eq!(a.stats().measurements, b.stats().measurements);
        assert_eq!(a.stats().noise_symbols, b.stats().noise_symbols);
    }

    #[test]
    fn measure_point_runs() {
        let p = measure_fig3_point(Workload::Fig3a, 16, 100);
        assert_eq!(p.n, 16);
    }

    #[test]
    fn scale_point_runs_structured() {
        let c = deep_memory_circuit(500);
        // The deep workload is structured: O(one round) instructions.
        assert!(c.instructions().len() < 60);
        assert_eq!(c.num_measurements(), 8 * 500 + 9);
        let p = measure_scale_point(500, 64);
        assert_eq!(p.rounds, 500);
    }

    #[test]
    fn all_backend_choices_sample_through_the_trait() {
        let c = Workload::Fig3a.circuit(8, 2);
        for kind in [
            EngineKind::SymPhaseSparse,
            EngineKind::SymPhaseDense,
            EngineKind::Frame,
            EngineKind::Tableau,
        ] {
            let t = time_backend(kind, &c, 64, 3);
            assert_eq!(t.label, kind.name());
        }
    }

    #[test]
    fn streaming_path_delivers_every_shot() {
        let c = Workload::Fig3a.circuit(8, 2);
        // Asserts delivered == requested internally.
        let _ = time_backend_stream(EngineKind::SymPhaseSparse, &c, 10_000, 5);
    }

    /// Nightly-free smoke bench: exercises the full sampling ablation
    /// matrix at a toy size (it asserts naive == blocked internally).
    /// Run explicitly with:
    /// `cargo test -p symphase-bench --release -- --ignored smoke`
    #[test]
    #[ignore = "smoke bench; run with -- --ignored"]
    fn smoke_ablation_sampling() {
        let rows = ablation_sampling_matrix(32, 4096, 9);
        // 3 circuits × (2 kernels + 4 methods).
        assert_eq!(rows.len(), 18);
        for row in &rows {
            println!("{:<14} {:<12} {}s", row.circuit, row.kernel, secs(row.time));
        }
    }

    #[test]
    fn par_path_verified_against_serial() {
        let c = Workload::Fig3a.circuit(8, 2);
        // time_backend_par asserts shot-for-shot equality internally.
        let _ = time_backend_par(EngineKind::SymPhaseSparse, &c, 10_000, 5);
        let _ = time_backend_par(EngineKind::Frame, &c, 10_000, 5);
    }
}
