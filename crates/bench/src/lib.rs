//! Shared workload definitions and timing helpers for the benchmark
//! harness that regenerates every table and figure of the paper.
//!
//! The Criterion benches (`benches/fig3a.rs`, …) and the `experiments`
//! binary both build their circuits through this crate so that DESIGN.md's
//! experiment index points at one set of definitions.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase_circuit::generators::{fig3a_circuit, fig3b_circuit, fig3c_circuit};
use symphase_circuit::Circuit;
use symphase_core::{PhaseRepr, SymPhaseSampler};
use symphase_frame::FrameSampler;

/// Number of samples the paper's Fig. 3 timing uses.
pub const PAPER_SHOTS: usize = 10_000;

/// Depolarizing strength used for the Fig. 3c workload (the paper does not
/// state one; 0.001 is a typical circuit-level rate).
pub const FIG3C_NOISE: f64 = 0.001;

/// Which Fig. 3 workload family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Fig. 3a: 5 CNOT pairs per layer (sparse interaction).
    Fig3a,
    /// Fig. 3b: ⌊n/2⌋ CNOT pairs per layer (dense interaction).
    Fig3b,
    /// Fig. 3c: Fig. 3b plus per-qubit depolarizing each layer.
    Fig3c,
}

impl Workload {
    /// Builds the circuit for `n` qubits (and `n` layers).
    pub fn circuit(self, n: usize, seed: u64) -> Circuit {
        match self {
            Workload::Fig3a => fig3a_circuit(n, seed),
            Workload::Fig3b => fig3b_circuit(n, seed),
            Workload::Fig3c => fig3c_circuit(n, FIG3C_NOISE, seed),
        }
    }

    /// The phase representation each workload runs best with (the paper's
    /// conclusion anticipates picking the representation per circuit):
    /// sparse for the sparse-interaction family, dense otherwise.
    pub fn phase_repr(self) -> PhaseRepr {
        match self {
            Workload::Fig3a => PhaseRepr::Sparse,
            Workload::Fig3b | Workload::Fig3c => PhaseRepr::Dense,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Fig3a => "fig3a",
            Workload::Fig3b => "fig3b",
            Workload::Fig3c => "fig3c",
        }
    }
}

/// One measured data point of a Fig. 3 style comparison.
#[derive(Clone, Copy, Debug)]
pub struct FigPoint {
    /// Qubit (= layer) count.
    pub n: usize,
    /// Time to build the SymPhase sampler (Initialization).
    pub symphase_init: Duration,
    /// Time for SymPhase to generate the sample batch.
    pub symphase_sample: Duration,
    /// Time to build the frame sampler (reference sample).
    pub frame_init: Duration,
    /// Time for the frame baseline to generate the sample batch.
    pub frame_sample: Duration,
}

/// Measures one point of a Fig. 3 comparison.
pub fn measure_fig3_point(workload: Workload, n: usize, shots: usize) -> FigPoint {
    let circuit = workload.circuit(n, 0xF16_3000 + n as u64);

    let t = Instant::now();
    let sym = SymPhaseSampler::with_repr(&circuit, workload.phase_repr());
    let symphase_init = t.elapsed();
    let mut rng = StdRng::seed_from_u64(1);
    let t = Instant::now();
    let s = sym.sample(shots, &mut rng);
    let symphase_sample = t.elapsed();
    std::hint::black_box(s.count_ones());

    let t = Instant::now();
    let frame = FrameSampler::new(&circuit);
    let frame_init = t.elapsed();
    let mut rng = StdRng::seed_from_u64(2);
    let t = Instant::now();
    let f = frame.sample(shots, &mut rng);
    let frame_sample = t.elapsed();
    std::hint::black_box(f.count_ones());

    FigPoint {
        n,
        symphase_init,
        symphase_sample,
        frame_init,
        frame_sample,
    }
}

/// The Table 1 scaling workload: a fixed measurement/noise skeleton with a
/// variable number of *extra* gate layers appended, so `n_g` sweeps while
/// `n_m` and `n_p` stay fixed.
pub fn table1_circuit(n: usize, extra_gate_layers: usize, seed: u64) -> Circuit {
    use rand::seq::SliceRandom;
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n as u32);
    let mut idx: Vec<u32> = (0..n as u32).collect();
    let layer = |c: &mut Circuit, rng: &mut StdRng, idx: &mut Vec<u32>| {
        for q in 0..n as u32 {
            if rng.random_bool(0.5) {
                c.h(q);
            } else {
                c.s(q);
            }
        }
        idx.shuffle(rng);
        c.gate(symphase_circuit::Gate::Cx, &idx[..(n / 2) * 2]);
    };
    // Skeleton: a few entangling layers, noise sites, and measurements.
    for _ in 0..4 {
        layer(&mut c, &mut rng, &mut idx);
        c.noise(symphase_circuit::NoiseChannel::XError(0.01), &[0]);
        let q = rng.random_range(0..n as u32);
        c.measure(q);
    }
    // Extra gate-only layers: these change n_g but not n_m or n_p.
    for _ in 0..extra_gate_layers {
        layer(&mut c, &mut rng, &mut idx);
    }
    c.measure_all();
    c
}

/// Formats a [`Duration`] in seconds with 4 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build() {
        for w in [Workload::Fig3a, Workload::Fig3b, Workload::Fig3c] {
            let c = w.circuit(16, 1);
            assert_eq!(c.num_qubits(), 16);
            assert!(c.num_measurements() > 16);
        }
    }

    #[test]
    fn table1_circuit_scales_gates_only() {
        let a = table1_circuit(16, 0, 3);
        let b = table1_circuit(16, 10, 3);
        assert!(b.stats().gates > a.stats().gates + 100);
        assert_eq!(a.stats().measurements, b.stats().measurements);
        assert_eq!(a.stats().noise_symbols, b.stats().noise_symbols);
    }

    #[test]
    fn measure_point_runs() {
        let p = measure_fig3_point(Workload::Fig3a, 16, 100);
        assert_eq!(p.n, 16);
    }
}
