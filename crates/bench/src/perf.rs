//! The tracked performance trajectory: `bench-json` report generation
//! and the `bench-check` regression gate.
//!
//! Every PR that touches a hot path lands a `BENCH_<n>.json` at the repo
//! root (schema [`SCHEMA`]) so the performance history is a diffable,
//! machine-readable series next to the code that produced it. The report
//! has two matrices:
//!
//! * **kernels** — the raw F₂ kernels (naive row-gather product, blocked
//!   Four-Russians product, packed transpose) on each ablation circuit's
//!   densified measurement matrix, timed at every requested SIMD level
//!   via [`simd::with_level`], with `speedup_vs_scalar` per cell;
//! * **end_to_end** — the streaming sampling path (`stream_with_config`,
//!   the exact delivery the CLI runs) per circuit at each thread budget,
//!   in shots/s, with `speedup_vs_serial` per threaded cell;
//! * **opt** — the verified rewrite driver (`analysis::optimize`) as an
//!   ablation: per workload, the optimizer's own wall time and what it
//!   removed, plus serial streaming shots/s on the raw vs the optimized
//!   circuit (`speedup_vs_raw`). Clean workloads pin the no-op overhead;
//!   the `redundant_memory` workload carries deliberate body redundancy.
//! * **analyze** — the DEM-level static analysis (`analysis::analyze_circuit`):
//!   per workload, the full analyze wall time (extraction + hypergraph
//!   lints + bounded distance search + fault-injection verification),
//!   the mechanism census, and the distance verdict. The ablation set
//!   plus a d=3 surface memory whose distance resolves within the
//!   search bound, pinning the verified-claim path's cost;
//! * **serve** — the sampling daemon as an ablation against the offline
//!   path: per worker count, the cold first-request latency (parse +
//!   symbolic initialization), the warm-cache request latency, and the
//!   aggregate shots/s when the run is sharded across that many
//!   concurrent clients, vs serial offline streaming of the same shots.
//!
//! The gate ([`check_regression`]) re-measures serial `surface_d5`
//! streaming throughput and fails when it lands more than a tolerance
//! below the committed baseline's number. Wall-clock gates are
//! hardware-sensitive: the committed baseline records `host.cores` and
//! the SIMD level so a reader can tell an algorithmic regression from a
//! machine change (docs/performance.md discusses the caveats).

use std::process::Command;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase::analysis::{analyze_circuit, optimize, AnalyzeConfig, Distance, ProofStatus};
use symphase::backend::{build_sampler, EngineKind, SimConfig};
use symphase::sampler_api::formats::{RecordSource, SampleFormat};
use symphase::sampler_api::{sink, CountingSink, CHUNK_SHOTS};
use symphase::serve::{request_sample, CircuitRef, SampleRequest, ServeOptions, Server};
use symphase_bitmat::simd::{self, SimdLevel};
use symphase_circuit::generators::{surface_code_memory, SurfaceCodeConfig};
use symphase_circuit::Circuit;
use symphase_core::SymPhaseSampler;

use crate::json::Json;
use crate::sampling_ablation_circuits;

/// Schema identifier stamped into every report.
pub const SCHEMA: &str = "symphase-bench/v1";

/// One timeable kernel closure in the per-circuit kernel matrix.
type KernelRun<'a> = Box<dyn Fn() + 'a>;

/// What `bench-json` runs.
#[derive(Clone, Debug)]
pub struct PerfConfig {
    /// Qubit-scale knob forwarded to [`sampling_ablation_circuits`].
    pub n: usize,
    /// Shot count for the kernel matrix (the `B` batch width).
    pub kernel_shots: usize,
    /// Shot count for the end-to-end streaming matrix.
    pub stream_shots: usize,
    /// SIMD levels to time the kernels at. Scalar is kept (or added)
    /// first so `speedup_vs_scalar` always has its baseline.
    pub levels: Vec<SimdLevel>,
    /// Thread budgets for the end-to-end matrix; 1 must be present (it
    /// is the serial baseline and the regression-gate reference).
    pub thread_counts: Vec<usize>,
    /// Worker counts for the serve matrix (each measured against serial
    /// offline streaming of the same shots).
    pub serve_workers: Vec<usize>,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            n: 64,
            kernel_shots: 4096,
            stream_shots: 20_000,
            levels: simd::available_levels().collect(),
            thread_counts: vec![1, 2, 4],
            serve_workers: vec![1, 2, 8],
        }
    }
}

impl PerfConfig {
    /// Restricts the kernel matrix to `level` (plus the scalar
    /// baseline), as the `--simd` flag requests.
    pub fn with_simd(mut self, level: SimdLevel) -> Self {
        self.levels = if level == SimdLevel::Scalar {
            vec![SimdLevel::Scalar]
        } else {
            vec![SimdLevel::Scalar, level]
        };
        self
    }
}

/// Mean wall time of `f` over enough repetitions to be stable: one
/// warmup call, then at least 40 ms (capped at 64 reps) of timed calls.
fn time_mean(mut f: impl FnMut()) -> f64 {
    f();
    let t = Instant::now();
    let mut reps = 0u32;
    loop {
        f();
        reps += 1;
        if t.elapsed() >= Duration::from_millis(40) || reps >= 64 {
            break;
        }
    }
    t.elapsed().as_secs_f64() / f64::from(reps)
}

fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Times the serial (`threads = 1`) end-to-end streaming path on the
/// `surface_d5` ablation circuit — the number the regression gate pins.
pub fn serial_surface_throughput(stream_shots: usize) -> f64 {
    let (_, circuit) = sampling_ablation_circuits(16)
        .into_iter()
        .find(|(name, _)| *name == "surface_d5")
        .expect("surface_d5 is always in the ablation set");
    let sampler = build_sampler(&circuit, &SimConfig::new()).expect("engine builds");
    let secs = time_mean(|| {
        let cfg = SimConfig::new().with_seed(1).with_threads(1);
        let mut out = CountingSink::default();
        sink::stream_with_config(sampler.as_ref(), stream_shots, &cfg, &mut out)
            .expect("counting sink cannot fail");
        std::hint::black_box(out.measurement_ones);
    });
    stream_shots as f64 / secs
}

/// The optimizer-ablation workloads: every sampling-ablation circuit
/// (clean — they price the optimizer's no-op overhead) plus a structured
/// `REPEAT` memory with deliberate in-body redundancy (a fusable identity
/// pair per round) that the driver must remove under a clamped proof.
pub fn opt_ablation_circuits(n: usize) -> Vec<(&'static str, Circuit)> {
    let mut out = sampling_ablation_circuits(n);
    out.push((
        "redundant_memory",
        Circuit::parse(
            "R 0 1\nM 1\nREPEAT 10000 {\n    H 0\n    H 0\n    X_ERROR(0.001) 1\n    M 1\n    \
             DETECTOR rec[-1] rec[-2]\n}\nM 0\n",
        )
        .expect("redundant memory workload parses"),
    ));
    out
}

/// One row per optimizer-ablation workload: what `optimize` cost and
/// removed, and serial streaming throughput raw vs optimized.
fn opt_ablation_rows(n: usize, stream_shots: usize) -> Vec<Json> {
    let mut rows = Vec::new();
    for (name, circuit) in opt_ablation_circuits(n) {
        let t = Instant::now();
        let result = optimize(&circuit);
        let opt_secs = t.elapsed().as_secs_f64();
        let rollbacks = result
            .proof
            .iter()
            .filter(|p| matches!(p.status, ProofStatus::RolledBack { .. }))
            .count();

        let throughput = |c: &Circuit| {
            let sampler = build_sampler(c, &SimConfig::new()).expect("engine builds");
            let secs = time_mean(|| {
                let cfg = SimConfig::new().with_seed(1).with_threads(1);
                let mut out = CountingSink::default();
                sink::stream_with_config(sampler.as_ref(), stream_shots, &cfg, &mut out)
                    .expect("counting sink cannot fail");
                std::hint::black_box(out.measurement_ones);
            });
            stream_shots as f64 / secs
        };
        let raw = throughput(&circuit);
        let opt = throughput(&result.circuit);

        rows.push(Json::obj(vec![
            ("circuit", Json::Str(name.to_owned())),
            ("opt_time_s", Json::Num(opt_secs)),
            ("gates_before", Json::Num(result.report.gates_before as f64)),
            ("gates_after", Json::Num(result.report.gates_after as f64)),
            (
                "noise_before",
                Json::Num(result.report.noise_sites_before as f64),
            ),
            (
                "noise_after",
                Json::Num(result.report.noise_sites_after as f64),
            ),
            ("flips", Json::Num(result.flipped_records.len() as f64)),
            ("rollbacks", Json::Num(rollbacks as f64)),
            ("raw_shots_per_sec", Json::Num(raw)),
            ("opt_shots_per_sec", Json::Num(opt)),
            ("speedup_vs_raw", Json::Num(opt / raw)),
        ]));
    }
    rows
}

/// One serve-daemon measurement at a fixed worker count (see
/// [`serve_bench`]).
#[derive(Clone, Copy, Debug)]
pub struct ServePoint {
    /// Daemon worker threads (per-request sampling pinned serial, so any
    /// scaling comes from the worker pool).
    pub workers: usize,
    /// Shots actually measured: `stream_shots` rounded up to whole
    /// chunks, at least one chunk per worker.
    pub shots: usize,
    /// First-request latency on a cold cache: parse + symbolic
    /// initialization + one chunk of samples over loopback.
    pub cold_first_request_s: f64,
    /// Same one-chunk request served warm from the cache.
    pub warm_request_s: f64,
    /// Aggregate shots/s with the run sharded across `workers`
    /// concurrent clients (disjoint chunk-aligned ranges).
    pub sharded_shots_per_sec: f64,
    /// Serial offline streaming of the same shots (no daemon).
    pub offline_shots_per_sec: f64,
}

/// Benchmarks an in-process loopback daemon against the offline path on
/// the `surface_d5` ablation circuit: cold vs warm cache, and sharded
/// throughput at `workers` concurrent clients.
pub fn serve_bench(n: usize, stream_shots: usize, workers: usize) -> ServePoint {
    let (_, circuit) = sampling_ablation_circuits(n)
        .into_iter()
        .find(|(name, _)| *name == "surface_d5")
        .expect("surface_d5 is always in the ablation set");
    let text = circuit.to_string();
    let chunk = CHUNK_SHOTS;
    let chunks = stream_shots.div_ceil(chunk).max(workers);
    let shots = chunks * chunk;

    // The offline baseline: serial streaming of the same shots.
    let sampler = build_sampler(&circuit, &SimConfig::new()).expect("engine builds");
    let offline_secs = time_mean(|| {
        let cfg = SimConfig::new().with_seed(1).with_threads(1);
        let mut out = CountingSink::default();
        sink::stream_with_config(sampler.as_ref(), shots, &cfg, &mut out)
            .expect("counting sink cannot fail");
        std::hint::black_box(out.measurement_ones);
    });
    drop(sampler);

    let options = ServeOptions {
        workers,
        threads: 1,
        ..ServeOptions::default()
    };
    let server = Server::bind(
        "127.0.0.1:0",
        options,
        std::sync::Arc::new(build_sampler),
        None,
    )
    .expect("bind loopback")
    .spawn();
    let addr = server.addr();
    let request = |start: usize, end: usize| SampleRequest {
        circuit: CircuitRef::Text(text.clone()),
        engine: EngineKind::SymPhase,
        source: RecordSource::Measurements,
        format: SampleFormat::B8,
        seed: 1,
        start: start as u64,
        end: end as u64,
    };

    // Cold: the first request pays parse + initialization once.
    let t = Instant::now();
    let reply = request_sample(addr, &request(0, chunk), &mut std::io::sink())
        .expect("cold request succeeds");
    let cold_first_request_s = t.elapsed().as_secs_f64();
    assert!(
        !reply.cache_hit,
        "a fresh daemon cannot have this circuit cached"
    );

    // Warm: the identical request served from the cache.
    let warm_request_s = time_mean(|| {
        let reply = request_sample(addr, &request(0, chunk), &mut std::io::sink())
            .expect("warm request succeeds");
        assert!(reply.cache_hit, "warm requests must skip re-initialization");
    });

    // Sharded: `workers` concurrent clients tile [0, shots) with
    // disjoint chunk-aligned ranges (bit-identity pinned by tests/serve.rs).
    let per = chunks.div_ceil(workers);
    let reps = 3;
    let t = Instant::now();
    for _ in 0..reps {
        std::thread::scope(|s| {
            for w in 0..workers {
                let lo = (w * per).min(chunks) * chunk;
                let hi = ((w + 1) * per).min(chunks) * chunk;
                if lo >= hi {
                    continue;
                }
                let req = request(lo, hi);
                s.spawn(move || {
                    request_sample(addr, &req, &mut std::io::sink())
                        .expect("shard request succeeds");
                });
            }
        });
    }
    let sharded_secs = t.elapsed().as_secs_f64() / f64::from(reps);
    server.shutdown().expect("clean daemon shutdown");

    ServePoint {
        workers,
        shots,
        cold_first_request_s,
        warm_request_s,
        sharded_shots_per_sec: shots as f64 / sharded_secs,
        offline_shots_per_sec: shots as f64 / offline_secs,
    }
}

/// The analyze-ablation workloads: the sampling ablation set (the two
/// non-QEC workloads price the no-detector fast paths) plus a d=3
/// surface memory whose distance resolves — and is injection-verified —
/// within the search bound.
fn analyze_ablation_circuits(n: usize) -> Vec<(&'static str, Circuit)> {
    let mut out = sampling_ablation_circuits(n);
    out.push((
        "surface_d3_memory",
        surface_code_memory(&SurfaceCodeConfig {
            distance: 3,
            rounds: 3,
            data_error: 0.001,
            measure_error: 0.001,
        }),
    ));
    out
}

/// One row per analyze-ablation workload: full analyze wall time
/// (extraction + hypergraph lints + distance search + verification),
/// the mechanism census, and the distance verdict. The search is
/// bounded at weight 4 so the d=3 memory resolves its distance while
/// the d=5 memory prices the exhausted-search (`AboveWeight`) path.
fn analyze_rows(n: usize) -> Vec<Json> {
    let config = AnalyzeConfig {
        max_weight: 4,
        ..AnalyzeConfig::default()
    };
    let mut rows = Vec::new();
    for (name, circuit) in analyze_ablation_circuits(n) {
        let mut report = None;
        let secs = time_mean(|| {
            report = Some(analyze_circuit(&circuit, &config).expect("bench workload analyzes"));
        });
        let report = report.expect("time_mean ran at least once");
        let (kind, weight) = match &report.distance {
            Distance::UpperBound { fault_set } => {
                ("upper-bound", Json::Num(fault_set.weight() as f64))
            }
            Distance::AboveWeight { .. } => ("above-weight", Json::Null),
            Distance::Clamped { .. } => ("clamped", Json::Null),
            Distance::NoObservables => ("no-observables", Json::Null),
        };
        rows.push(Json::obj(vec![
            ("circuit", Json::Str(name.to_owned())),
            ("analyze_time_s", Json::Num(secs)),
            ("mechanisms", Json::Num(report.summary.mechanisms as f64)),
            ("graphlike", Json::Num(report.summary.graphlike as f64)),
            ("hyperedges", Json::Num(report.summary.hyperedges as f64)),
            ("distance_kind", Json::Str(kind.to_owned())),
            ("distance", weight),
            ("verified", Json::Bool(report.verified)),
        ]));
    }
    rows
}

fn serve_rows(n: usize, stream_shots: usize, worker_counts: &[usize]) -> Vec<Json> {
    worker_counts
        .iter()
        .map(|&workers| {
            let p = serve_bench(n, stream_shots, workers);
            Json::obj(vec![
                ("workers", Json::Num(p.workers as f64)),
                ("shots", Json::Num(p.shots as f64)),
                ("cold_first_request_s", Json::Num(p.cold_first_request_s)),
                ("warm_request_s", Json::Num(p.warm_request_s)),
                (
                    "warm_requests_per_sec",
                    Json::Num(1.0 / p.warm_request_s.max(1e-9)),
                ),
                ("sharded_shots_per_sec", Json::Num(p.sharded_shots_per_sec)),
                ("offline_shots_per_sec", Json::Num(p.offline_shots_per_sec)),
                (
                    "speedup_vs_offline",
                    Json::Num(p.sharded_shots_per_sec / p.offline_shots_per_sec),
                ),
            ])
        })
        .collect()
}

/// Runs the full kernel + end-to-end matrix and returns the report as a
/// [`Json`] document (render it with [`Json::render`]).
pub fn run_perf_report(cfg: &PerfConfig) -> Json {
    assert!(
        cfg.thread_counts.contains(&1),
        "thread_counts must include the serial baseline"
    );
    let mut levels = cfg.levels.clone();
    levels.retain(|l| *l <= simd::detected_level());
    if !levels.contains(&SimdLevel::Scalar) {
        levels.insert(0, SimdLevel::Scalar);
    }
    levels.sort();
    levels.dedup();

    let mut kernel_rows = Vec::new();
    let mut end_rows = Vec::new();

    for (name, circuit) in sampling_ablation_circuits(cfg.n) {
        // --- Kernel matrix: raw F₂ products on the densified M. ---
        let sampler = SymPhaseSampler::new(&circuit);
        let dense = sampler.measurement_matrix().to_dense();
        let b = sampler
            .symbol_table()
            .sample_assignments(cfg.kernel_shots, &mut StdRng::seed_from_u64(23));
        let kernels: [(&str, KernelRun); 3] = [
            (
                "mul_naive",
                Box::new(|| {
                    std::hint::black_box(dense.mul(&b).count_ones());
                }),
            ),
            (
                "mul_blocked",
                Box::new(|| {
                    std::hint::black_box(dense.mul_blocked(&b).count_ones());
                }),
            ),
            (
                "transpose",
                Box::new(|| {
                    std::hint::black_box(dense.transpose().count_ones());
                }),
            ),
        ];
        for (kernel, run) in &kernels {
            let mut scalar_secs = None;
            for &level in &levels {
                let secs = simd::with_level(level, || time_mean(run));
                if level == SimdLevel::Scalar {
                    scalar_secs = Some(secs);
                }
                kernel_rows.push(Json::obj(vec![
                    ("circuit", Json::Str(name.to_owned())),
                    ("kernel", Json::Str((*kernel).to_owned())),
                    ("simd", Json::Str(level.name().to_owned())),
                    ("time_s", Json::Num(secs)),
                    (
                        "speedup_vs_scalar",
                        match scalar_secs {
                            Some(base) => Json::Num(base / secs),
                            None => Json::Null,
                        },
                    ),
                ]));
            }
        }

        // --- End-to-end matrix: the streaming delivery path. ---
        let streamer = build_sampler(&circuit, &SimConfig::new()).expect("engine builds");
        let mut serial_secs = None;
        for &threads in &cfg.thread_counts {
            let secs = time_mean(|| {
                let run_cfg = SimConfig::new().with_seed(1).with_threads(threads);
                let mut out = CountingSink::default();
                sink::stream_with_config(streamer.as_ref(), cfg.stream_shots, &run_cfg, &mut out)
                    .expect("counting sink cannot fail");
                std::hint::black_box(out.measurement_ones);
            });
            if threads == 1 {
                serial_secs = Some(secs);
            }
            end_rows.push(Json::obj(vec![
                ("circuit", Json::Str(name.to_owned())),
                ("engine", Json::Str("symphase".to_owned())),
                ("threads", Json::Num(threads as f64)),
                ("shots", Json::Num(cfg.stream_shots as f64)),
                ("time_s", Json::Num(secs)),
                ("shots_per_sec", Json::Num(cfg.stream_shots as f64 / secs)),
                (
                    "speedup_vs_serial",
                    match serial_secs {
                        Some(base) => Json::Num(base / secs),
                        None => Json::Null,
                    },
                ),
            ]));
        }
    }

    Json::obj(vec![
        ("schema", Json::Str(SCHEMA.to_owned())),
        ("git_rev", Json::Str(git_rev())),
        (
            "unix_time",
            Json::Num(
                SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map_or(0.0, |d| d.as_secs() as f64),
            ),
        ),
        (
            "host",
            Json::obj(vec![
                ("cores", Json::Num(cores() as f64)),
                (
                    "simd_detected",
                    Json::Str(simd::detected_level().name().to_owned()),
                ),
                (
                    "simd_levels",
                    Json::Arr(
                        levels
                            .iter()
                            .map(|l| Json::Str(l.name().to_owned()))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "config",
            Json::obj(vec![
                ("n", Json::Num(cfg.n as f64)),
                ("kernel_shots", Json::Num(cfg.kernel_shots as f64)),
                ("stream_shots", Json::Num(cfg.stream_shots as f64)),
                (
                    "thread_counts",
                    Json::Arr(
                        cfg.thread_counts
                            .iter()
                            .map(|&t| Json::Num(t as f64))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("kernels", Json::Arr(kernel_rows)),
        ("end_to_end", Json::Arr(end_rows)),
        ("opt", Json::Arr(opt_ablation_rows(cfg.n, cfg.stream_shots))),
        ("analyze", Json::Arr(analyze_rows(cfg.n))),
        (
            "serve",
            Json::Arr(serve_rows(cfg.n, cfg.stream_shots, &cfg.serve_workers)),
        ),
    ])
}

/// Extracts the serial `surface_d5` shots/s from a parsed baseline
/// report.
pub fn baseline_surface_throughput(report: &Json) -> Result<f64, String> {
    let rows = report
        .get("end_to_end")
        .and_then(Json::as_arr)
        .ok_or("baseline has no end_to_end array")?;
    rows.iter()
        .find(|row| {
            row.get("circuit").and_then(Json::as_str) == Some("surface_d5")
                && row.get("threads").and_then(Json::as_f64) == Some(1.0)
        })
        .and_then(|row| row.get("shots_per_sec").and_then(Json::as_f64))
        .ok_or_else(|| "baseline has no serial surface_d5 row".to_owned())
}

/// The regression gate: re-measures serial `surface_d5` streaming
/// throughput and compares it to `baseline`'s number. Returns a human
/// summary on pass, an error string when throughput fell more than
/// `tolerance_pct` percent below baseline.
pub fn check_regression(
    baseline: &Json,
    tolerance_pct: f64,
    stream_shots: usize,
) -> Result<String, String> {
    let base = baseline_surface_throughput(baseline)?;
    let now = serial_surface_throughput(stream_shots);
    let floor = base * (1.0 - tolerance_pct / 100.0);
    let line = format!(
        "surface_d5 serial streaming: baseline {base:.0} shots/s, \
         current {now:.0} shots/s, floor {floor:.0} (tolerance {tolerance_pct}%)"
    );
    if now >= floor {
        Ok(line)
    } else {
        Err(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny report generated end to end: the schema fields the gate
    /// and the docs promise are present, the speedup baselines are
    /// self-consistent, and the gate accepts its own fresh baseline.
    #[test]
    fn report_schema_and_gate_round_trip() {
        let cfg = PerfConfig {
            n: 16,
            kernel_shots: 256,
            stream_shots: 512,
            levels: vec![SimdLevel::Scalar],
            thread_counts: vec![1, 2],
            serve_workers: vec![1, 2],
        };
        let report = run_perf_report(&cfg);
        assert_eq!(report.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert!(report.get("git_rev").and_then(Json::as_str).is_some());
        assert!(report.get("host").and_then(|h| h.get("cores")).is_some());

        let kernels = report.get("kernels").and_then(Json::as_arr).unwrap();
        // 3 circuits × 3 kernels × 1 level.
        assert_eq!(kernels.len(), 9);
        for row in kernels {
            assert_eq!(row.get("simd").and_then(Json::as_str), Some("scalar"));
            let speedup = row.get("speedup_vs_scalar").and_then(Json::as_f64);
            assert_eq!(speedup, Some(1.0), "scalar rows are their own baseline");
        }

        let ends = report.get("end_to_end").and_then(Json::as_arr).unwrap();
        assert_eq!(ends.len(), 6); // 3 circuits × 2 thread budgets.
        assert!(baseline_surface_throughput(&report).unwrap() > 0.0);

        let opts = report.get("opt").and_then(Json::as_arr).unwrap();
        assert_eq!(opts.len(), 4); // 3 ablation circuits + redundant_memory.
        for row in opts {
            assert_eq!(row.get("rollbacks").and_then(Json::as_f64), Some(0.0));
            assert!(row.get("opt_shots_per_sec").and_then(Json::as_f64).unwrap() > 0.0);
        }
        let redundant = opts
            .iter()
            .find(|r| r.get("circuit").and_then(Json::as_str) == Some("redundant_memory"))
            .unwrap();
        assert!(
            redundant.get("gates_after").and_then(Json::as_f64)
                < redundant.get("gates_before").and_then(Json::as_f64),
            "redundant workload must shrink"
        );

        let analyzes = report.get("analyze").and_then(Json::as_arr).unwrap();
        assert_eq!(analyzes.len(), 4); // 3 ablation circuits + surface_d3_memory.
        let d3 = analyzes
            .iter()
            .find(|r| r.get("circuit").and_then(Json::as_str) == Some("surface_d3_memory"))
            .unwrap();
        assert_eq!(d3.get("distance").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            d3.get("distance_kind").and_then(Json::as_str),
            Some("upper-bound")
        );

        let serves = report.get("serve").and_then(Json::as_arr).unwrap();
        assert_eq!(serves.len(), 2); // one row per worker count.
        for (row, workers) in serves.iter().zip([1.0, 2.0]) {
            assert_eq!(row.get("workers").and_then(Json::as_f64), Some(workers));
            for field in [
                "cold_first_request_s",
                "warm_request_s",
                "sharded_shots_per_sec",
                "offline_shots_per_sec",
            ] {
                assert!(
                    row.get(field).and_then(Json::as_f64).unwrap() > 0.0,
                    "{field} must be positive"
                );
            }
        }

        // Round-trip through text exactly as CI does.
        let parsed = Json::parse(&report.render()).unwrap();
        // A fresh measurement against itself passes at a loose tolerance.
        check_regression(&parsed, 90.0, 512).expect("self-baseline passes");
    }
}
