//! A minimal JSON value type with an emitter and a parser.
//!
//! The bench harness writes schema'd `BENCH_<n>.json` reports and the
//! regression gate reads the committed baseline back; neither needs more
//! than objects/arrays/strings/numbers/bools, and the workspace vendors
//! no serde, so this hand-rolled ~200-line implementation is the whole
//! dependency. Object key order is preserved (reports stay diffable).

use std::fmt::Write as _;

/// One JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (emitted with up to 9 significant decimals).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks a key up in an object (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(out, *n),
            Json::Str(s) => render_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, indent + 1);
                    render_str(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the whole input must be one value).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let mut s = format!("{n:.9}");
        while s.ends_with('0') {
            s.pop();
        }
        if s.ends_with('.') {
            s.pop();
        }
        out.push_str(&s);
    }
}

fn render_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at byte {pos}"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 scalar starting here.
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid UTF-8")?,
                );
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shaped_value() {
        let doc = Json::obj(vec![
            ("schema", Json::Str("symphase-bench/v1".into())),
            ("cores", Json::Num(4.0)),
            ("time_s", Json::Num(0.123456789)),
            ("ok", Json::Bool(true)),
            ("note", Json::Null),
            (
                "rows",
                Json::Arr(vec![Json::obj(vec![
                    ("circuit", Json::Str("surface_d5".into())),
                    ("shots_per_sec", Json::Num(123456.5)),
                ])]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, doc);
        assert_eq!(
            back.get("rows").unwrap().as_arr().unwrap()[0]
                .get("circuit")
                .unwrap()
                .as_str(),
            Some("surface_d5")
        );
    }

    #[test]
    fn escapes_and_integers_survive() {
        let doc = Json::obj(vec![
            ("s", Json::Str("a\"b\\c\nd\te".into())),
            ("i", Json::Num(1234567.0)),
        ]);
        let back = Json::parse(&doc.render()).unwrap();
        assert_eq!(back, doc);
        assert!(doc.render().contains("\"i\": 1234567"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} extra").is_err());
    }
}
