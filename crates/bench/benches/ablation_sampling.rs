//! Ablation A1: the Sampling step's multiplication strategy.
//!
//! The paper uses a "sparse implementation of matrix multiplication" (§5);
//! this bench compares it against a dense F₂ product on a sparse workload
//! (repetition code) and a dense workload (Fig. 3c).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase_bench::Workload;
use symphase_circuit::generators::{repetition_code_memory, RepetitionCodeConfig};
use symphase_core::{SamplingMethod, SymPhaseSampler};

const SHOTS: usize = 10_000;

fn bench_methods(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/sampling_method");
    g.sample_size(10);

    let qec = repetition_code_memory(&RepetitionCodeConfig {
        distance: 15,
        rounds: 15,
        data_error: 0.01,
        measure_error: 0.01,
    });
    let dense_random = Workload::Fig3c.circuit(64, 7);

    for (name, circuit) in [("repetition_d15", qec), ("fig3c_n64", dense_random)] {
        let sampler = SymPhaseSampler::new(&circuit);
        // Warm the densified matrix outside the timing loop.
        let _ = sampler.sample_with_method(
            64,
            &mut StdRng::seed_from_u64(0),
            SamplingMethod::DenseMatMul,
        );
        g.bench_function(BenchmarkId::new("sparse_rows", name), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sampler.sample_with_method(SHOTS, &mut rng, SamplingMethod::SparseRows))
        });
        g.bench_function(BenchmarkId::new("dense_matmul", name), |b| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| sampler.sample_with_method(SHOTS, &mut rng, SamplingMethod::DenseMatMul))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
