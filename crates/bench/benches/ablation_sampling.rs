//! Ablation A1: the Sampling step's multiplication strategy.
//!
//! The paper's Sampling step is the F₂ product `M · B` (Eq. (4), §5).
//! This bench compares, on a sparse workload (surface-code memory) and a
//! dense workload (random layered circuit, Fig. 3c picture):
//!
//! * the **kernel level** — naive row-gather [`BitMatrix::mul`] vs the
//!   blocked Four-Russians kernel [`BitMatrix::mul_blocked`] on the same
//!   densified measurement matrix and assignment batch (bit-identical
//!   outputs);
//! * the **method level** — every [`SamplingMethod`], including what
//!   `Auto` picks.
//!
//! Expected shape: `mul_blocked` beats `mul_naive` clearly on the dense
//! `ghz_chain` workload (the matrix shape `DenseMatMul` exists for) and
//! holds near parity on the sparse matrices (adaptive per-group
//! fallback); `hybrid` wins the rare-fault circuits outright.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase_bench::sampling_ablation_circuits;
use symphase_core::{SamplingMethod, SymPhaseSampler};

const SHOTS: usize = 10_000;

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/sampling_kernel");
    g.sample_size(10);
    for (name, circuit) in sampling_ablation_circuits(64) {
        let sampler = SymPhaseSampler::new(&circuit);
        let dense = sampler.measurement_matrix().to_dense();
        let b = sampler
            .symbol_table()
            .sample_assignments(SHOTS, &mut StdRng::seed_from_u64(3));
        g.bench_function(BenchmarkId::new("mul_naive", name), |bench| {
            bench.iter(|| dense.mul(&b))
        });
        g.bench_function(BenchmarkId::new("mul_blocked", name), |bench| {
            bench.iter(|| dense.mul_blocked(&b))
        });
    }
    g.finish();
}

fn bench_methods(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/sampling_method");
    g.sample_size(10);
    for (name, circuit) in sampling_ablation_circuits(64) {
        let sampler = SymPhaseSampler::new(&circuit);
        // Warm the densified matrix outside the timing loop.
        let _ = sampler.sample_with_method(
            64,
            &mut StdRng::seed_from_u64(0),
            SamplingMethod::DenseMatMul,
        );
        for method in SamplingMethod::ALL {
            g.bench_function(BenchmarkId::new(method.name(), name), |bench| {
                let mut rng = StdRng::seed_from_u64(1);
                bench.iter(|| sampler.sample_with_method(SHOTS, &mut rng, method))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_methods);
criterion_main!(benches);
