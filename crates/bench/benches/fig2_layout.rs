//! Fig. 2: the three stabilizer-tableau data layouts.
//!
//! Measures column-operation (gate) throughput, row-operation
//! (measurement) throughput, and mode-switch (transpose) cost for the
//! `chp.c` row-major layout, Stim's 8×8-block layout, and SymPhase's
//! 512×512-block layout with local transposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase_bitmat::layout::{ChpLayout, StimLayout, SymLayout512, TableauLayout};

const SIZES: &[usize] = &[1024, 2048];

fn col_ops<L: TableauLayout>(
    g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    size: usize,
) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut l = L::zeros(size, size);
    l.fill_random(&mut rng);
    l.ensure_col_mode();
    g.bench_function(BenchmarkId::new(L::NAME, size), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let src = (i * 7919) % size;
            let dst = (src + 1 + (i % (size - 1))) % size;
            i += 1;
            if src != dst {
                l.xor_col_into(src, dst);
            }
        })
    });
}

fn row_ops<L: TableauLayout>(
    g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    size: usize,
) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut l = L::zeros(size, size);
    l.fill_random(&mut rng);
    l.ensure_row_mode();
    g.bench_function(BenchmarkId::new(L::NAME, size), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let src = (i * 104729) % size;
            let dst = (src + 1 + (i % (size - 1))) % size;
            i += 1;
            if src != dst {
                l.xor_row_into(src, dst);
            }
        })
    });
}

fn switches<L: TableauLayout>(
    g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    size: usize,
) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut l = L::zeros(size, size);
    l.fill_random(&mut rng);
    g.bench_function(BenchmarkId::new(L::NAME, size), |b| {
        b.iter(|| {
            l.ensure_row_mode();
            l.ensure_col_mode();
        })
    });
}

fn bench_col_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/col_op");
    for &size in SIZES {
        col_ops::<ChpLayout>(&mut g, size);
        col_ops::<StimLayout>(&mut g, size);
        col_ops::<SymLayout512>(&mut g, size);
    }
    g.finish();
}

fn bench_row_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/row_op");
    for &size in SIZES {
        row_ops::<ChpLayout>(&mut g, size);
        row_ops::<StimLayout>(&mut g, size);
        row_ops::<SymLayout512>(&mut g, size);
    }
    g.finish();
}

fn bench_switches(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/mode_switch");
    g.sample_size(10);
    for &size in SIZES {
        switches::<StimLayout>(&mut g, size);
        switches::<SymLayout512>(&mut g, size);
        // ChpLayout switches are no-ops; included as the zero baseline.
        switches::<ChpLayout>(&mut g, size);
    }
    g.finish();
}

criterion_group!(benches, bench_col_ops, bench_row_ops, bench_switches);
criterion_main!(benches);
