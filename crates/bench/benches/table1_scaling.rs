//! Table 1: sampling-cost dependence on the gate count `n_g`.
//!
//! A fixed measurement/noise skeleton gets extra gate-only layers appended;
//! per Table 1, the frame baseline's per-shot cost grows with `n_g` while
//! Algorithm 1's sampling step does not depend on it at all.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase_bench::table1_circuit;
use symphase_core::SymPhaseSampler;
use symphase_frame::FrameSampler;

const N: usize = 48;
const SHOTS: usize = 10_000;
const EXTRA_LAYERS: &[usize] = &[0, 32, 128];

fn bench_sampling_vs_gates(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/sample10k_vs_gates");
    g.sample_size(10);
    for &extra in EXTRA_LAYERS {
        let circuit = table1_circuit(N, extra, 11);
        let gates = circuit.stats().gates;
        let sym = SymPhaseSampler::new(&circuit);
        let frame = FrameSampler::new(&circuit);
        g.bench_function(BenchmarkId::new("symphase", gates), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sym.sample(SHOTS, &mut rng))
        });
        g.bench_function(BenchmarkId::new("frame", gates), |b| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| frame.sample(SHOTS, &mut rng))
        });
    }
    g.finish();
}

fn bench_init_vs_gates(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/init_vs_gates");
    g.sample_size(10);
    for &extra in EXTRA_LAYERS {
        let circuit = table1_circuit(N, extra, 11);
        let gates = circuit.stats().gates;
        g.bench_with_input(BenchmarkId::new("symphase", gates), &circuit, |b, c| {
            b.iter(|| SymPhaseSampler::new(c))
        });
        g.bench_with_input(BenchmarkId::new("frame", gates), &circuit, |b, c| {
            b.iter(|| FrameSampler::new(c))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sampling_vs_gates, bench_init_vs_gates);
criterion_main!(benches);
