//! Fig. 3a: sparse layered random circuits (5 CNOT pairs per layer).
//!
//! Benchmarks sampler initialization and 10,000-sample generation for the
//! SymPhase sampler vs the Pauli-frame baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase_bench::{Workload, PAPER_SHOTS};
use symphase_core::SymPhaseSampler;
use symphase_frame::FrameSampler;

const WORKLOAD: Workload = Workload::Fig3a;
const SIZES: &[usize] = &[32, 64, 128];

fn bench_init(c: &mut Criterion) {
    let mut g = c.benchmark_group(format!("{}/init", WORKLOAD.name()));
    g.sample_size(10);
    for &n in SIZES {
        let circuit = WORKLOAD.circuit(n, 0xF16_3000 + n as u64);
        g.bench_with_input(BenchmarkId::new("symphase", n), &circuit, |b, c| {
            b.iter(|| SymPhaseSampler::with_repr(c, WORKLOAD.phase_repr()))
        });
        g.bench_with_input(BenchmarkId::new("frame", n), &circuit, |b, c| {
            b.iter(|| FrameSampler::new(c))
        });
    }
    g.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group(format!("{}/sample10k", WORKLOAD.name()));
    g.sample_size(10);
    for &n in SIZES {
        let circuit = WORKLOAD.circuit(n, 0xF16_3000 + n as u64);
        let sym = SymPhaseSampler::with_repr(&circuit, WORKLOAD.phase_repr());
        let frame = FrameSampler::new(&circuit);
        g.bench_function(BenchmarkId::new("symphase", n), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sym.sample(PAPER_SHOTS, &mut rng))
        });
        g.bench_function(BenchmarkId::new("frame", n), |b| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| frame.sample(PAPER_SHOTS, &mut rng))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_init, bench_sampling);
criterion_main!(benches);
