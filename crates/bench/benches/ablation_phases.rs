//! Ablation A2: dense vs sparse symbolic phase stores during
//! Initialization.
//!
//! Sparse rows win when expressions stay short (QEC circuits); the dense
//! bit-matrix wins when phases mix heavily (dense random circuits with
//! noise) — the same trade-off the paper's conclusion anticipates for its
//! data layouts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use symphase_bench::Workload;
use symphase_circuit::generators::{repetition_code_memory, RepetitionCodeConfig};
use symphase_core::{PhaseRepr, SymPhaseSampler};

fn bench_phase_repr(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/phase_repr_init");
    g.sample_size(10);

    let qec = repetition_code_memory(&RepetitionCodeConfig {
        distance: 15,
        rounds: 15,
        data_error: 0.01,
        measure_error: 0.01,
    });
    let dense_random = Workload::Fig3c.circuit(64, 7);

    for (name, circuit) in [("repetition_d15", qec), ("fig3c_n64", dense_random)] {
        g.bench_with_input(BenchmarkId::new("sparse", name), &circuit, |b, c| {
            b.iter(|| SymPhaseSampler::with_repr(c, PhaseRepr::Sparse))
        });
        g.bench_with_input(BenchmarkId::new("dense", name), &circuit, |b, c| {
            b.iter(|| SymPhaseSampler::with_repr(c, PhaseRepr::Dense))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_phase_repr);
criterion_main!(benches);
