//! Symbolic phase stores: the tableau columns of paper Eq. (3).
//!
//! Both stores keep the constant term (column `s₀`) as a plain bit-vector so
//! Clifford gates stay word-parallel, and differ in how they hold the
//! symbol coefficients of each row:
//!
//! * [`DensePhases`] — a packed bit-row per tableau row (grown geometrically
//!   as symbols appear): faithful to the paper's bit-matrix picture.
//! * [`SparsePhases`] — a sorted symbol list per row: per-row XOR cost
//!   proportional to the number of symbols actually present, which stays
//!   tiny for QEC-style circuits (the "sparse circuits" case of Table 1).

use symphase_bitmat::{BitVec, SparseBitVec, WORD_BITS};
use symphase_tableau::PhaseStore;

use crate::expr::SymExpr;
use crate::symbol::SymbolId;

/// Extension of [`PhaseStore`] with symbol-coefficient operations (paper
/// Init-P and Init-M).
pub trait SymbolicPhases: PhaseStore {
    /// Makes room for symbol ids up to and including `max_id`.
    fn ensure_symbol_capacity(&mut self, max_id: SymbolId);

    /// Declares rows below `first_tracked` as *untracked*: their symbol
    /// coefficients are never read, so stores may skip maintaining them.
    ///
    /// The engine marks the destabilizer rows (`0..n`) untracked — their
    /// phases are irrelevant to measurement outcomes (Aaronson–Gottesman
    /// §III); this roughly halves Initialization's phase work. Constant
    /// terms are still maintained for every row (they are word-cheap).
    /// Untracked rows must never be used as the *source* of
    /// `add_row_into`/`copy_row`; the tableau's measurement control flow
    /// guarantees this (sources are always stabilizer or scratch rows).
    fn set_symbol_tracking_floor(&mut self, first_tracked: usize);

    /// Flips the coefficient of `sym` in every row selected by `mask`
    /// (rows `64·word_index .. 64·word_index+64`) — the effect of a fault
    /// `P^s` on the rows that anticommute with `P`.
    fn xor_symbol_word(&mut self, sym: SymbolId, word_index: usize, mask: u64);

    /// XORs a whole expression into the phases of every row selected by
    /// `mask` — the effect of a classically-controlled Pauli `P^e`
    /// (paper §6 dynamic circuits).
    fn xor_expr_word(&mut self, expr: &SymExpr, word_index: usize, mask: u64);

    /// Extracts the full symbolic phase of `row`.
    fn row_expr(&self, row: usize) -> SymExpr;
}

// ---------------------------------------------------------------------------
// Dense store
// ---------------------------------------------------------------------------

/// Dense symbolic phases: per-row packed coefficient words (symbol `k` at
/// bit `k−1`), plus a shared constant-term bit-vector.
#[derive(Clone, Debug)]
pub struct DensePhases {
    constants: BitVec,
    rows: usize,
    /// Words per row of the symbol block.
    stride: usize,
    /// `sym[row * stride ..][..stride]`.
    sym: Vec<u64>,
    /// Rows below this index skip symbol maintenance.
    first_tracked: usize,
}

impl DensePhases {
    fn grow_stride(&mut self, needed_words: usize) {
        let new_stride = needed_words.max(self.stride * 2).max(1);
        let mut new_sym = vec![0u64; self.rows * new_stride];
        for r in 0..self.rows {
            new_sym[r * new_stride..r * new_stride + self.stride]
                .copy_from_slice(&self.sym[r * self.stride..(r + 1) * self.stride]);
        }
        self.sym = new_sym;
        self.stride = new_stride;
    }

    fn row_words(&self, row: usize) -> &[u64] {
        &self.sym[row * self.stride..(row + 1) * self.stride]
    }
}

impl PhaseStore for DensePhases {
    fn with_rows(rows: usize) -> Self {
        Self {
            constants: BitVec::zeros(rows),
            rows,
            stride: 0,
            sym: Vec::new(),
            first_tracked: 0,
        }
    }

    fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    fn xor_constant_word(&mut self, word_index: usize, mask: u64) {
        self.constants.words_mut()[word_index] ^= mask;
    }

    fn add_row_into(&mut self, src: usize, dst: usize, extra_constant: bool) {
        let c = self.constants.get(dst) ^ self.constants.get(src) ^ extra_constant;
        self.constants.set(dst, c);
        if self.stride == 0 || dst < self.first_tracked {
            return;
        }
        debug_assert!(src >= self.first_tracked, "untracked row used as source");
        let stride = self.stride;
        let (s_off, d_off) = (src * stride, dst * stride);
        if s_off < d_off {
            let (lo, hi) = self.sym.split_at_mut(d_off);
            for i in 0..stride {
                hi[i] ^= lo[s_off + i];
            }
        } else {
            let (lo, hi) = self.sym.split_at_mut(s_off);
            for i in 0..stride {
                lo[d_off + i] ^= hi[i];
            }
        }
    }

    fn copy_row(&mut self, src: usize, dst: usize) {
        let c = self.constants.get(src);
        self.constants.set(dst, c);
        if self.stride == 0 || dst < self.first_tracked {
            return;
        }
        let stride = self.stride;
        let (s_off, d_off) = (src * stride, dst * stride);
        if s_off < d_off {
            let (lo, hi) = self.sym.split_at_mut(d_off);
            hi[..stride].copy_from_slice(&lo[s_off..s_off + stride]);
        } else {
            let (lo, hi) = self.sym.split_at_mut(s_off);
            lo[d_off..d_off + stride].copy_from_slice(&hi[..stride]);
        }
    }

    fn clear_row(&mut self, row: usize) {
        self.constants.set(row, false);
        let stride = self.stride;
        self.sym[row * stride..(row + 1) * stride]
            .iter_mut()
            .for_each(|w| *w = 0);
    }

    fn constant_bit(&self, row: usize) -> bool {
        self.constants.get(row)
    }

    fn set_constant_bit(&mut self, row: usize, value: bool) {
        self.constants.set(row, value);
    }
}

impl SymbolicPhases for DensePhases {
    fn ensure_symbol_capacity(&mut self, max_id: SymbolId) {
        let needed_words = (max_id as usize).div_ceil(WORD_BITS);
        if needed_words > self.stride {
            self.grow_stride(needed_words);
        }
    }

    fn set_symbol_tracking_floor(&mut self, first_tracked: usize) {
        self.first_tracked = first_tracked;
    }

    fn xor_symbol_word(&mut self, sym: SymbolId, word_index: usize, mask: u64) {
        debug_assert!(sym >= 1);
        let bit = (sym - 1) as usize;
        let (sw, sb) = (bit / WORD_BITS, bit % WORD_BITS);
        let mut m = tracked_mask(mask, word_index, self.first_tracked);
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            let row = word_index * WORD_BITS + b;
            self.sym[row * self.stride + sw] ^= 1 << sb;
        }
    }

    fn xor_expr_word(&mut self, expr: &SymExpr, word_index: usize, mask: u64) {
        if expr.constant_term() {
            self.constants.words_mut()[word_index] ^= mask;
        }
        let mut m = tracked_mask(mask, word_index, self.first_tracked);
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            let row = word_index * WORD_BITS + b;
            for &id in expr.symbol_ids() {
                let bit = (id - 1) as usize;
                self.sym[row * self.stride + bit / WORD_BITS] ^= 1 << (bit % WORD_BITS);
            }
        }
    }

    fn row_expr(&self, row: usize) -> SymExpr {
        let mut e = SymExpr::constant(self.constants.get(row));
        for (w, &word) in self.row_words(row).iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                e.xor_symbol((w * WORD_BITS + b + 1) as u32);
            }
        }
        e
    }
}

// ---------------------------------------------------------------------------
// Sparse store
// ---------------------------------------------------------------------------

/// Sparse symbolic phases: a sorted symbol-id list per row.
#[derive(Clone, Debug)]
pub struct SparsePhases {
    constants: BitVec,
    rows: Vec<SparseBitVec>,
    /// Rows below this index skip symbol maintenance.
    first_tracked: usize,
}

impl PhaseStore for SparsePhases {
    fn with_rows(rows: usize) -> Self {
        Self {
            constants: BitVec::zeros(rows),
            rows: vec![SparseBitVec::new(); rows],
            first_tracked: 0,
        }
    }

    fn rows(&self) -> usize {
        self.rows.len()
    }

    #[inline]
    fn xor_constant_word(&mut self, word_index: usize, mask: u64) {
        self.constants.words_mut()[word_index] ^= mask;
    }

    fn add_row_into(&mut self, src: usize, dst: usize, extra_constant: bool) {
        let c = self.constants.get(dst) ^ self.constants.get(src) ^ extra_constant;
        self.constants.set(dst, c);
        if dst < self.first_tracked {
            return;
        }
        debug_assert!(src >= self.first_tracked, "untracked row used as source");
        debug_assert_ne!(src, dst);
        let (a, b) = (src.min(dst), src.max(dst));
        let (lo, hi) = self.rows.split_at_mut(b);
        if src < dst {
            hi[0].xor_assign(&lo[a]);
        } else {
            lo[a].xor_assign(&hi[0]);
        }
    }

    fn copy_row(&mut self, src: usize, dst: usize) {
        let c = self.constants.get(src);
        self.constants.set(dst, c);
        if dst < self.first_tracked {
            return;
        }
        let row = self.rows[src].clone();
        self.rows[dst] = row;
    }

    fn clear_row(&mut self, row: usize) {
        self.constants.set(row, false);
        self.rows[row].clear();
    }

    fn constant_bit(&self, row: usize) -> bool {
        self.constants.get(row)
    }

    fn set_constant_bit(&mut self, row: usize, value: bool) {
        self.constants.set(row, value);
    }
}

impl SymbolicPhases for SparsePhases {
    fn ensure_symbol_capacity(&mut self, _max_id: SymbolId) {}

    fn set_symbol_tracking_floor(&mut self, first_tracked: usize) {
        self.first_tracked = first_tracked;
    }

    fn xor_symbol_word(&mut self, sym: SymbolId, word_index: usize, mask: u64) {
        debug_assert!(sym >= 1);
        let mut m = tracked_mask(mask, word_index, self.first_tracked);
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            self.rows[word_index * WORD_BITS + b].flip(sym);
        }
    }

    fn xor_expr_word(&mut self, expr: &SymExpr, word_index: usize, mask: u64) {
        if expr.constant_term() {
            self.constants.words_mut()[word_index] ^= mask;
        }
        let sym_part = SparseBitVec::from_indices(expr.symbol_ids().iter().copied());
        let mut m = tracked_mask(mask, word_index, self.first_tracked);
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            self.rows[word_index * WORD_BITS + b].xor_assign(&sym_part);
        }
    }

    fn row_expr(&self, row: usize) -> SymExpr {
        let mut e = SymExpr::from_symbols(self.rows[row].indices().iter().copied());
        e.xor_constant(self.constants.get(row));
        e
    }
}

/// Clears the bits of `mask` that select rows below `first_tracked`.
#[inline]
fn tracked_mask(mask: u64, word_index: usize, first_tracked: usize) -> u64 {
    let word_start = word_index * WORD_BITS;
    if word_start >= first_tracked {
        mask
    } else if word_start + WORD_BITS <= first_tracked {
        0
    } else {
        mask & (!0u64 << (first_tracked - word_start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: SymbolicPhases + Clone>(mut store: S) {
        store.ensure_symbol_capacity(80);
        // Attach s3 to rows 0 and 65, s80 to row 0.
        store.xor_symbol_word(3, 0, 0b1);
        store.xor_symbol_word(3, 1, 0b10); // row 65
        store.xor_symbol_word(80, 0, 0b1);
        assert_eq!(store.row_expr(0).symbol_ids(), &[3, 80]);
        assert_eq!(store.row_expr(65).symbol_ids(), &[3]);
        assert!(store.row_expr(1).is_zero());

        // Row multiplication mixes symbol parts and constants.
        store.set_constant_bit(65, true);
        store.add_row_into(65, 0, true);
        // row0: {3, 80} ⊕ {3} = {80}; const: 0 ⊕ 1 ⊕ 1 = 0.
        let e = store.row_expr(0);
        assert_eq!(e.symbol_ids(), &[80]);
        assert!(!e.constant_term());

        // Copy and clear.
        store.copy_row(65, 2);
        assert_eq!(store.row_expr(2).symbol_ids(), &[3]);
        assert!(store.row_expr(2).constant_term());
        store.clear_row(2);
        assert!(store.row_expr(2).is_zero());

        // Expression application.
        let mut expr = SymExpr::from_symbols([5, 9]);
        expr.xor_constant(true);
        store.xor_expr_word(&expr, 0, 0b100); // row 2
        let e = store.row_expr(2);
        assert_eq!(e.symbol_ids(), &[5, 9]);
        assert!(e.constant_term());

        // Constant-word flips.
        store.xor_constant_word(0, 0b100);
        assert!(!store.row_expr(2).constant_term());
    }

    #[test]
    fn dense_store_behaviour() {
        exercise(DensePhases::with_rows(130));
    }

    #[test]
    fn sparse_store_behaviour() {
        exercise(SparsePhases::with_rows(130));
    }

    #[test]
    fn dense_growth_preserves_contents() {
        let mut d = DensePhases::with_rows(4);
        d.ensure_symbol_capacity(1);
        d.xor_symbol_word(1, 0, 0b1);
        d.ensure_symbol_capacity(5000);
        d.xor_symbol_word(5000, 0, 0b1);
        assert_eq!(d.row_expr(0).symbol_ids(), &[1, 5000]);
    }

    #[test]
    fn stores_agree_on_random_ops() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let rows = 70;
        let mut dense = DensePhases::with_rows(rows);
        let mut sparse = SparsePhases::with_rows(rows);
        dense.ensure_symbol_capacity(40);
        for _ in 0..400 {
            match rng.random_range(0..5) {
                0 => {
                    let sym = rng.random_range(1..=40u32);
                    let w = rng.random_range(0..2usize);
                    let mask: u64 = rng.random();
                    let mask = if w == 1 {
                        mask & ((1 << (rows - 64)) - 1)
                    } else {
                        mask
                    };
                    dense.xor_symbol_word(sym, w, mask);
                    sparse.xor_symbol_word(sym, w, mask);
                }
                1 => {
                    let src = rng.random_range(0..rows);
                    let mut dst = rng.random_range(0..rows);
                    if dst == src {
                        dst = (dst + 1) % rows;
                    }
                    let extra: bool = rng.random();
                    dense.add_row_into(src, dst, extra);
                    sparse.add_row_into(src, dst, extra);
                }
                2 => {
                    let src = rng.random_range(0..rows);
                    let dst = rng.random_range(0..rows);
                    if src != dst {
                        dense.copy_row(src, dst);
                        sparse.copy_row(src, dst);
                    }
                }
                3 => {
                    let row = rng.random_range(0..rows);
                    dense.clear_row(row);
                    sparse.clear_row(row);
                }
                _ => {
                    let w = rng.random_range(0..2usize);
                    let mask: u64 = rng.random();
                    let mask = if w == 1 {
                        mask & ((1 << (rows - 64)) - 1)
                    } else {
                        mask
                    };
                    dense.xor_constant_word(w, mask);
                    sparse.xor_constant_word(w, mask);
                }
            }
        }
        for r in 0..rows {
            assert_eq!(dense.row_expr(r), sparse.row_expr(r), "row {r} diverged");
        }
    }
}
