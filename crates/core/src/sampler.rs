//! Algorithm 1: the SymPhase sampler.

use std::sync::OnceLock;

use rand::{Rng, RngCore};

use symphase_backend::record::{detector_measurement_sets, observable_measurement_sets};
pub use symphase_backend::SampleBatch;
use symphase_backend::Sampler;
use symphase_bitmat::bernoulli::fill_bernoulli;
use symphase_bitmat::{BitMatrix, SparseBitVec, SparseRowMatrix};
use symphase_circuit::Circuit;

use crate::engine::{initialize, InitResult};
use crate::expr::SymExpr;
use crate::phases::{DensePhases, SparsePhases};
use crate::symbol::{SymbolGroup, SymbolTable};

/// Which symbolic phase store Initialization uses (paper Eq. (3) dense
/// bit-matrix vs sparse rows; ablation A2 in DESIGN.md).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PhaseRepr {
    /// Choose per circuit (the paper's conclusion suggests "dynamically
    /// determining the layout based on the type/pattern of the circuit"):
    /// heavily-interacting noisy circuits mix phases until sparse rows
    /// degenerate, so pick [`PhaseRepr::Dense`] when the expected symbol
    /// density is high and [`PhaseRepr::Sparse`] otherwise.
    #[default]
    Auto,
    /// Sorted symbol lists per tableau row (best for QEC-style circuits,
    /// where each generator carries few symbols).
    Sparse,
    /// Packed coefficient bit-rows (the paper's dense picture; best for
    /// dense random circuits with pervasive noise).
    Dense,
}

impl PhaseRepr {
    /// Resolves `Auto` against a circuit's statistics.
    ///
    /// Heuristic: the sparse store wins while expressions stay short. Long
    /// expressions come from deep mixing, which needs *many two-qubit gates
    /// per measurement*; noise symbols further multiply the mixing mass.
    /// Empirically (ablation A2) the crossover sits around a symbol-churn
    /// of a few dozen symbols per measurement.
    pub fn resolve(self, circuit: &Circuit) -> PhaseRepr {
        match self {
            PhaseRepr::Auto => {
                let s = circuit.stats();
                let per_meas =
                    (s.noise_symbols + s.measurements) as f64 / s.measurements.max(1) as f64;
                if per_meas > 8.0 {
                    PhaseRepr::Dense
                } else {
                    PhaseRepr::Sparse
                }
            }
            other => other,
        }
    }
}

/// How the Sampling step multiplies `M · B` (ablation A1 in DESIGN.md).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SamplingMethod {
    /// Coins (fair measurement randomness) are multiplied densely — they
    /// fire every shot — while fault symbols are handled *event-wise*:
    /// for each fired noise site the affected measurement bits are flipped
    /// through a symbol → measurements index. For realistic fault rates
    /// almost no sites fire, so the noise cost is proportional to the
    /// number of actual fault events, the strongest form of the paper's
    /// column-sparsity argument (Table 1's `O(n_smp · n_m)` sparse case).
    #[default]
    Hybrid,
    /// Per-measurement XOR of the symbol shot-rows selected by the sparse
    /// measurement row — the paper's "sparse implementation of matrix
    /// multiplication" (§5).
    SparseRows,
    /// Dense F₂ matrix product against the densified measurement matrix.
    DenseMatMul,
}

/// The SymPhase measurement sampler (paper Algorithm 1).
///
/// [`SymPhaseSampler::new`] runs **Initialization**: a single symbolic
/// traversal of the circuit producing one XOR expression per measurement
/// (and per detector/observable). [`SymPhaseSampler::sample`] runs
/// **Sampling**: it draws an assignment matrix `B` from the noise model and
/// multiplies (Eq. (4)) — no circuit traversal, so the per-shot cost is
/// independent of the gate count (Table 1).
///
/// # Example
///
/// ```
/// use symphase_circuit::{Circuit, NoiseChannel};
/// use symphase_core::SymPhaseSampler;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(1);
/// c.noise(NoiseChannel::XError(0.25), &[0]);
/// c.measure(0);
/// let sampler = SymPhaseSampler::new(&c);
/// assert_eq!(sampler.measurement_expr(0).to_string(), "s1");
/// let s = sampler.sample(10_000, &mut StdRng::seed_from_u64(1));
/// let ones = (0..10_000).filter(|&i| s.get(0, i)).count();
/// assert!((ones as f64 - 2500.0).abs() < 300.0);
/// ```
#[derive(Debug)]
pub struct SymPhaseSampler {
    /// The representation the caller asked for (`Auto` when unpinned);
    /// reported through `Sampler::name`.
    requested_repr: PhaseRepr,
    table: SymbolTable,
    measurement_exprs: Vec<SymExpr>,
    meas_rows: SparseRowMatrix,
    det_rows: SparseRowMatrix,
    obs_rows: SparseRowMatrix,
    dense_meas: OnceLock<BitMatrix>,
    event_index: OnceLock<EventIndex>,
}

/// Precomputed structure for [`SamplingMethod::Hybrid`]: the coin-only
/// restriction of the measurement matrix plus, for every fault symbol, the
/// list of measurement rows it appears in.
#[derive(Debug)]
struct EventIndex {
    /// Measurement rows over remapped columns: 0 = constant, `k` = the
    /// k-th coin (1-based).
    coin_rows: SparseRowMatrix,
    /// `sym_cols[id]` = measurement rows containing fault symbol `id`
    /// (empty for coins).
    sym_cols: Vec<Vec<u32>>,
    num_coins: usize,
}

impl EventIndex {
    fn build(table: &SymbolTable, rows: &SparseRowMatrix) -> Self {
        let len = table.assignment_len();
        // coin_rank[id] = 1-based coin index, 0 for fault symbols.
        let mut coin_rank = vec![0u32; len];
        let mut num_coins = 0u32;
        for g in table.groups() {
            if let SymbolGroup::Coin { id } = g {
                num_coins += 1;
                coin_rank[*id as usize] = num_coins;
            }
        }
        let mut coin_rows = SparseRowMatrix::new(num_coins as usize + 1);
        let mut sym_cols = vec![Vec::new(); len];
        for (r, row) in rows.iter().enumerate() {
            let mut coin_part = Vec::new();
            for &c in row.indices() {
                if c == 0 {
                    coin_part.push(0);
                } else if coin_rank[c as usize] != 0 {
                    coin_part.push(coin_rank[c as usize]);
                } else {
                    sym_cols[c as usize].push(r as u32);
                }
            }
            coin_rows.push_row(SparseBitVec::from_indices(coin_part));
        }
        Self {
            coin_rows,
            sym_cols,
            num_coins: num_coins as usize,
        }
    }
}

impl SymPhaseSampler {
    /// Runs Initialization, choosing the phase store per circuit
    /// ([`PhaseRepr::Auto`]).
    pub fn new(circuit: &Circuit) -> Self {
        Self::with_repr(circuit, PhaseRepr::Auto)
    }

    /// Runs Initialization with an explicit phase-store choice.
    pub fn with_repr(circuit: &Circuit, repr: PhaseRepr) -> Self {
        let init: InitResult = match repr.resolve(circuit) {
            PhaseRepr::Sparse => initialize::<SparsePhases>(circuit),
            PhaseRepr::Dense | PhaseRepr::Auto => initialize::<DensePhases>(circuit),
        };
        Self::from_init(circuit, init, repr)
    }

    fn from_init(circuit: &Circuit, init: InitResult, requested_repr: PhaseRepr) -> Self {
        let cols = init.table.assignment_len();
        let mut meas_rows = SparseRowMatrix::new(cols);
        for e in &init.measurements {
            meas_rows.push_row(e.to_sparse_row());
        }
        let build_derived = |sets: Vec<Vec<usize>>| {
            let mut rows = SparseRowMatrix::new(cols);
            for set in sets {
                let mut acc = SymExpr::zero();
                for m in set {
                    acc.xor_assign(&init.measurements[m]);
                }
                rows.push_row(acc.to_sparse_row());
            }
            rows
        };
        let det_rows = build_derived(detector_measurement_sets(circuit));
        let obs_rows = build_derived(observable_measurement_sets(circuit));
        Self {
            requested_repr,
            table: init.table,
            measurement_exprs: init.measurements,
            meas_rows,
            det_rows,
            obs_rows,
            dense_meas: OnceLock::new(),
            event_index: OnceLock::new(),
        }
    }

    /// The phase representation this sampler was requested with
    /// (`Auto` when the per-circuit heuristic chose).
    pub fn requested_repr(&self) -> PhaseRepr {
        self.requested_repr
    }

    /// Number of measurement outcomes per shot.
    pub fn num_measurements(&self) -> usize {
        self.measurement_exprs.len()
    }

    /// Number of detectors.
    pub fn num_detectors(&self) -> usize {
        self.det_rows.rows()
    }

    /// Number of observables.
    pub fn num_observables(&self) -> usize {
        self.obs_rows.rows()
    }

    /// The symbol registry built during Initialization.
    pub fn symbol_table(&self) -> &SymbolTable {
        &self.table
    }

    /// The symbolic expression of measurement `m` — which coins and faults
    /// flip it (the fault-sensitivity view of paper Fig. 1).
    pub fn measurement_expr(&self, m: usize) -> SymExpr {
        self.measurement_exprs[m].clone()
    }

    /// All measurement expressions in record order.
    pub fn measurement_exprs(&self) -> &[SymExpr] {
        &self.measurement_exprs
    }

    /// The symbolic expression of detector `d`. Coins always cancel here;
    /// only fault symbols remain, which is exactly the circuit's
    /// detector-error structure.
    pub fn detector_expr(&self, d: usize) -> SymExpr {
        SymExpr::from_sparse_row(self.det_rows.row(d))
    }

    /// The symbolic expression of observable `o`.
    pub fn observable_expr(&self, o: usize) -> SymExpr {
        SymExpr::from_sparse_row(self.obs_rows.row(o))
    }

    /// The measurement matrix `M` in sparse form.
    pub fn measurement_matrix(&self) -> &SparseRowMatrix {
        &self.meas_rows
    }

    /// The detector rows (XORs of measurement rows) in sparse form.
    pub fn detector_rows(&self) -> &SparseRowMatrix {
        &self.det_rows
    }

    /// The observable rows in sparse form.
    pub fn observable_rows(&self) -> &SparseRowMatrix {
        &self.obs_rows
    }

    /// Sampling (Algorithm 1, line 2): draws `shots` assignment vectors and
    /// multiplies. Output is measurement-major (`num_measurements × shots`).
    pub fn sample(&self, shots: usize, rng: &mut impl Rng) -> BitMatrix {
        self.sample_with_method(shots, rng, SamplingMethod::default())
    }

    /// Shots per internal batch: keeps the assignment matrix `B` small
    /// enough to stay cache-resident while still packing 64 shots per word.
    const SHOT_BATCH: usize = 4096;

    /// Sampling with an explicit multiplication strategy.
    pub fn sample_with_method(
        &self,
        shots: usize,
        rng: &mut impl Rng,
        method: SamplingMethod,
    ) -> BitMatrix {
        let mut out = BitMatrix::zeros(self.meas_rows.rows(), shots);
        for start in (0..shots).step_by(Self::SHOT_BATCH) {
            let width = Self::SHOT_BATCH.min(shots - start);
            match method {
                SamplingMethod::Hybrid => {
                    self.sample_hybrid_into(&mut out, start, width, rng);
                }
                SamplingMethod::SparseRows => {
                    let b = self.table.sample_assignments(width, rng);
                    self.meas_rows.mul_dense_into(&b, &mut out, start / 64);
                }
                SamplingMethod::DenseMatMul => {
                    let b = self.table.sample_assignments(width, rng);
                    let dense = self.dense_meas.get_or_init(|| self.meas_rows.to_dense());
                    copy_columns(&dense.mul(&b), &mut out, start);
                }
            }
        }
        out
    }

    /// Samples measurements, detectors and observables from one shared
    /// assignment draw (columns are shot-aligned across the three
    /// matrices).
    pub fn sample_batch(&self, shots: usize, rng: &mut impl Rng) -> SampleBatch {
        let mut batch = SampleBatch::zeros(
            self.meas_rows.rows(),
            self.det_rows.rows(),
            self.obs_rows.rows(),
            shots,
        );
        self.sample_batch_into(&mut batch, rng);
        batch
    }

    /// In-place variant of [`SymPhaseSampler::sample_batch`]: fills a
    /// pre-shaped [`SampleBatch`].
    pub fn sample_batch_into(&self, batch: &mut SampleBatch, rng: &mut impl Rng) {
        let shots = batch.shots();
        for start in (0..shots).step_by(Self::SHOT_BATCH) {
            let width = Self::SHOT_BATCH.min(shots - start);
            let b = self.table.sample_assignments(width, rng);
            self.meas_rows
                .mul_dense_into(&b, &mut batch.measurements, start / 64);
            self.det_rows
                .mul_dense_into(&b, &mut batch.detectors, start / 64);
            self.obs_rows
                .mul_dense_into(&b, &mut batch.observables, start / 64);
        }
    }
}

impl Sampler for SymPhaseSampler {
    fn name(&self) -> &'static str {
        match self.requested_repr {
            PhaseRepr::Auto => "symphase",
            PhaseRepr::Sparse => "symphase-sparse",
            PhaseRepr::Dense => "symphase-dense",
        }
    }

    fn from_circuit(circuit: &Circuit) -> Self {
        Self::new(circuit)
    }

    fn num_measurements(&self) -> usize {
        SymPhaseSampler::num_measurements(self)
    }

    fn num_detectors(&self) -> usize {
        SymPhaseSampler::num_detectors(self)
    }

    fn num_observables(&self) -> usize {
        SymPhaseSampler::num_observables(self)
    }

    fn sample_into(&self, batch: &mut SampleBatch, mut rng: &mut dyn RngCore) {
        // The matrix products accumulate by XOR; clear so reused batches
        // don't mix draws.
        batch.clear();
        self.sample_batch_into(batch, &mut rng);
    }
}

impl SymPhaseSampler {
    /// The [`SamplingMethod::Hybrid`] inner loop for one shot window.
    fn sample_hybrid_into(
        &self,
        out: &mut BitMatrix,
        start: usize,
        width: usize,
        rng: &mut impl Rng,
    ) {
        use symphase_bitmat::bernoulli::for_each_bernoulli_index;
        let idx = self
            .event_index
            .get_or_init(|| EventIndex::build(&self.table, &self.meas_rows));

        // Coins fire half the time: handle them with the dense product.
        let mut coins = BitMatrix::zeros(idx.num_coins + 1, width);
        let cstride = coins.stride();
        {
            let tail = symphase_bitmat::word::tail_mask(width);
            let row0 = &mut coins.words_mut()[..cstride];
            row0.iter_mut().for_each(|w| *w = !0);
            if let Some(last) = row0.last_mut() {
                *last &= tail;
            }
        }
        for k in 1..=idx.num_coins {
            let words = &mut coins.words_mut()[k * cstride..(k + 1) * cstride];
            fill_bernoulli(words, width, 0.5, rng);
        }
        debug_assert_eq!(start % 64, 0, "batch starts must be word-aligned");
        idx.coin_rows.mul_dense_into(&coins, out, start / 64);

        // Fault symbols: per fired event, flip the affected measurements.
        let ostride = out.stride();
        let words = out.words_mut();
        let mut fired: Vec<usize> = Vec::new();
        let flip_all = |cols: &[u32], shot: usize, words: &mut [u64]| {
            let col = start + shot;
            for &m in cols {
                words[m as usize * ostride + col / 64] ^= 1u64 << (col % 64);
            }
        };
        for group in self.table.groups() {
            match *group {
                SymbolGroup::Coin { .. } => {}
                SymbolGroup::Bernoulli { id, p } => {
                    let cols = &idx.sym_cols[id as usize];
                    if cols.is_empty() {
                        continue;
                    }
                    fired.clear();
                    for_each_bernoulli_index(p, width, rng, |s| fired.push(s));
                    for &shot in &fired {
                        flip_all(cols, shot, words);
                    }
                }
                SymbolGroup::Depolarize1 { x_id, z_id, p } => {
                    let xc = &idx.sym_cols[x_id as usize];
                    let zc = &idx.sym_cols[z_id as usize];
                    if xc.is_empty() && zc.is_empty() {
                        continue;
                    }
                    fired.clear();
                    for_each_bernoulli_index(p, width, rng, |s| fired.push(s));
                    for &shot in &fired {
                        match rng.random_range(0..3u32) {
                            0 => flip_all(xc, shot, words), // X
                            1 => {
                                flip_all(xc, shot, words); // Y
                                flip_all(zc, shot, words);
                            }
                            _ => flip_all(zc, shot, words), // Z
                        }
                    }
                }
                SymbolGroup::Depolarize2 { ids, p } => {
                    if ids.iter().all(|&id| idx.sym_cols[id as usize].is_empty()) {
                        continue;
                    }
                    fired.clear();
                    for_each_bernoulli_index(p, width, rng, |s| fired.push(s));
                    for &shot in &fired {
                        let k = rng.random_range(1..16u32);
                        for (j, &id) in ids.iter().enumerate() {
                            if k & (1 << j) != 0 {
                                flip_all(&idx.sym_cols[id as usize], shot, words);
                            }
                        }
                    }
                }
                SymbolGroup::PauliChannel1 {
                    x_id,
                    z_id,
                    px,
                    py,
                    pz,
                } => {
                    let xc = &idx.sym_cols[x_id as usize];
                    let zc = &idx.sym_cols[z_id as usize];
                    if xc.is_empty() && zc.is_empty() {
                        continue;
                    }
                    let total = px + py + pz;
                    fired.clear();
                    for_each_bernoulli_index(total, width, rng, |s| fired.push(s));
                    for &shot in &fired {
                        let u: f64 = rng.random::<f64>() * total;
                        if u < px + py {
                            flip_all(xc, shot, words);
                        }
                        if u >= px {
                            flip_all(zc, shot, words);
                        }
                    }
                }
            }
        }
    }
}

/// Copies `partial` (a shot window) into `out` starting at shot column
/// `start`; `start` must be word-aligned (the batch size is a multiple of
/// 64).
fn copy_columns(partial: &BitMatrix, out: &mut BitMatrix, start: usize) {
    debug_assert_eq!(start % 64, 0, "batch starts must be word-aligned");
    let word_off = start / 64;
    let pstride = partial.stride();
    let ostride = out.stride();
    for r in 0..partial.rows() {
        let dst = &mut out.words_mut()[r * ostride + word_off..r * ostride + word_off + pstride];
        dst.copy_from_slice(partial.row(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symphase_circuit::generators::{
        bell_pair, ghz, repetition_code_memory, teleportation, RepetitionCodeConfig,
    };
    use symphase_circuit::NoiseChannel;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn bell_pair_correlated_and_fair() {
        let s = SymPhaseSampler::new(&bell_pair());
        let shots = 20_000;
        let out = s.sample(shots, &mut rng(1));
        let mut ones = 0usize;
        for shot in 0..shots {
            assert_eq!(out.get(0, shot), out.get(1, shot));
            ones += usize::from(out.get(0, shot));
        }
        assert!((ones as f64 - shots as f64 / 2.0).abs() < 6.0 * (shots as f64 / 4.0).sqrt());
    }

    #[test]
    fn ghz_shots_internally_consistent() {
        let s = SymPhaseSampler::new(&ghz(5));
        let out = s.sample(300, &mut rng(2));
        for shot in 0..300 {
            let v = out.get(0, shot);
            for q in 1..5 {
                assert_eq!(out.get(q, shot), v);
            }
        }
    }

    #[test]
    fn sparse_and_dense_multiplication_agree() {
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 4,
            rounds: 3,
            data_error: 0.1,
            measure_error: 0.05,
        });
        let s = SymPhaseSampler::new(&c);
        let a = s.sample_with_method(500, &mut rng(3), SamplingMethod::SparseRows);
        let b = s.sample_with_method(500, &mut rng(3), SamplingMethod::DenseMatMul);
        assert_eq!(a, b);
    }

    #[test]
    fn dense_and_sparse_phase_stores_agree() {
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 3,
            rounds: 2,
            data_error: 0.2,
            measure_error: 0.1,
        });
        let s1 = SymPhaseSampler::with_repr(&c, PhaseRepr::Sparse);
        let s2 = SymPhaseSampler::with_repr(&c, PhaseRepr::Dense);
        assert_eq!(s1.measurement_exprs(), s2.measurement_exprs());
    }

    #[test]
    fn teleportation_last_outcome_always_zero() {
        let s = SymPhaseSampler::new(&teleportation());
        let out = s.sample(2000, &mut rng(4));
        for shot in 0..2000 {
            assert!(!out.get(2, shot));
        }
    }

    #[test]
    fn noiseless_detectors_never_fire() {
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 5,
            rounds: 4,
            data_error: 0.0,
            measure_error: 0.0,
        });
        let s = SymPhaseSampler::new(&c);
        let batch = s.sample_batch(400, &mut rng(5));
        assert_eq!(batch.detectors.count_ones(), 0);
        assert_eq!(batch.observables.count_ones(), 0);
    }

    #[test]
    fn detector_expressions_contain_no_coins() {
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 3,
            rounds: 3,
            data_error: 0.01,
            measure_error: 0.01,
        });
        let s = SymPhaseSampler::new(&c);
        let coin_ids: std::collections::HashSet<u32> = s
            .symbol_table()
            .groups()
            .iter()
            .filter_map(|g| match g {
                crate::symbol::SymbolGroup::Coin { id } => Some(*id),
                _ => None,
            })
            .collect();
        for d in 0..s.num_detectors() {
            let e = s.detector_expr(d);
            assert!(!e.constant_term(), "detector {d} has constant term");
            for &id in e.symbol_ids() {
                assert!(
                    !coin_ids.contains(&id),
                    "detector {d} depends on coin s{id}"
                );
            }
        }
    }

    #[test]
    fn detectors_fire_at_noise_dependent_rate() {
        let p = 0.15;
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 3,
            rounds: 2,
            data_error: p,
            measure_error: 0.0,
        });
        let s = SymPhaseSampler::new(&c);
        let shots = 50_000;
        let batch = s.sample_batch(shots, &mut rng(6));
        // First-round detector d0 = data0 ⊕ data2 flips: fires iff exactly
        // one of the two X faults hit: 2p(1−p).
        let expect = 2.0 * p * (1.0 - p) * shots as f64;
        let fired = (0..shots).filter(|&i| batch.detectors.get(0, i)).count();
        assert!(
            (fired as f64 - expect).abs() < 6.0 * expect.sqrt() + 20.0,
            "detector rate {fired} vs expected {expect}"
        );
    }

    #[test]
    fn x_error_rate_propagates() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::XError(0.1), &[0]);
        c.noise(NoiseChannel::XError(0.1), &[0]);
        c.measure(0);
        let s = SymPhaseSampler::new(&c);
        // Outcome = s1 ⊕ s2: fires with 2·0.1·0.9 = 0.18.
        assert_eq!(s.measurement_expr(0).to_string(), "s1 ⊕ s2");
        let shots = 100_000;
        let out = s.sample(shots, &mut rng(7));
        let ones = (0..shots).filter(|&i| out.get(0, i)).count();
        let expect = 0.18 * shots as f64;
        assert!((ones as f64 - expect).abs() < 6.0 * (expect * 0.82).sqrt());
    }

    #[test]
    fn empty_circuit_samples_empty() {
        let c = Circuit::new(3);
        let s = SymPhaseSampler::new(&c);
        let out = s.sample(10, &mut rng(8));
        assert_eq!(out.rows(), 0);
        assert_eq!(out.cols(), 10);
    }
}
