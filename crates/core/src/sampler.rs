//! Algorithm 1: the SymPhase sampler.

use std::sync::OnceLock;

use rand::{Rng, RngCore};

use symphase_backend::record::{detector_measurement_sets, observable_measurement_sets};
pub use symphase_backend::SampleBatch;
use symphase_backend::Sampler;
pub use symphase_backend::{PhaseRepr, SamplingMethod};
use symphase_bitmat::bernoulli::{fill_bernoulli, for_each_bernoulli_index};
use symphase_bitmat::{BitMatrix, SparseBitVec, SparseRowMatrix};
use symphase_circuit::Circuit;

use crate::engine::{initialize, InitResult};
use crate::expr::SymExpr;
use crate::phases::{DensePhases, SparsePhases};
use crate::symbol::{SymbolGroup, SymbolTable};

/// The SymPhase measurement sampler (paper Algorithm 1).
///
/// [`SymPhaseSampler::new`] runs **Initialization**: a single symbolic
/// traversal of the circuit producing one XOR expression per measurement
/// (and per detector/observable). [`SymPhaseSampler::sample`] runs
/// **Sampling**: it draws an assignment matrix `B` from the noise model and
/// multiplies (Eq. (4)) — no circuit traversal, so the per-shot cost is
/// independent of the gate count (Table 1).
///
/// # Example
///
/// ```
/// use symphase_circuit::{Circuit, NoiseChannel};
/// use symphase_core::SymPhaseSampler;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(1);
/// c.noise(NoiseChannel::XError(0.25), &[0]);
/// c.measure(0);
/// let sampler = SymPhaseSampler::new(&c);
/// assert_eq!(sampler.measurement_expr(0).to_string(), "s1");
/// let s = sampler.sample(10_000, &mut StdRng::seed_from_u64(1));
/// let ones = (0..10_000).filter(|&i| s.get(0, i)).count();
/// assert!((ones as f64 - 2500.0).abs() < 300.0);
/// ```
#[derive(Debug)]
pub struct SymPhaseSampler {
    /// The representation the caller asked for (`Auto` when unpinned);
    /// reported through `Sampler::name`.
    requested_repr: PhaseRepr,
    /// The sampling method the `Sampler` trait entry points use (`Auto`
    /// when unpinned).
    method: SamplingMethod,
    /// What [`SamplingMethod::Auto`] resolves to on this circuit
    /// (precomputed so sampling never needs the circuit back).
    auto_method: SamplingMethod,
    table: SymbolTable,
    measurement_exprs: Vec<SymExpr>,
    random_records: Vec<bool>,
    meas_rows: SparseRowMatrix,
    det_rows: SparseRowMatrix,
    obs_rows: SparseRowMatrix,
    dense_meas: OnceLock<BitMatrix>,
    dense_det: OnceLock<BitMatrix>,
    dense_obs: OnceLock<BitMatrix>,
    hybrid_index: OnceLock<HybridIndex>,
}

/// Precomputed structure for [`SamplingMethod::Hybrid`]: the coin
/// remapping plus, per record matrix (measurements / detectors /
/// observables), the coin-only restriction of its rows and the
/// fault-symbol → rows index.
#[derive(Debug)]
struct HybridIndex {
    /// `coin_rank[id]` = 1-based coin index, 0 for fault symbols (and for
    /// the constant at index 0).
    coin_rank: Vec<u32>,
    num_coins: usize,
    meas: EventTarget,
    det: EventTarget,
    obs: EventTarget,
}

/// One record matrix as the hybrid strategy sees it.
#[derive(Debug)]
struct EventTarget {
    /// Rows over remapped columns: 0 = constant, `k` = the k-th coin
    /// (1-based).
    coin_rows: SparseRowMatrix,
    /// `sym_cols[id]` = rows containing fault symbol `id` (empty for
    /// coins).
    sym_cols: Vec<Vec<u32>>,
}

impl HybridIndex {
    fn build(
        table: &SymbolTable,
        meas: &SparseRowMatrix,
        det: &SparseRowMatrix,
        obs: &SparseRowMatrix,
    ) -> Self {
        let len = table.assignment_len();
        let mut coin_rank = vec![0u32; len];
        let mut num_coins = 0u32;
        for g in table.groups() {
            if let SymbolGroup::Coin { id } = g {
                num_coins += 1;
                coin_rank[*id as usize] = num_coins;
            }
        }
        Self {
            meas: EventTarget::build(&coin_rank, num_coins as usize, meas),
            det: EventTarget::build(&coin_rank, num_coins as usize, det),
            obs: EventTarget::build(&coin_rank, num_coins as usize, obs),
            coin_rank,
            num_coins: num_coins as usize,
        }
    }
}

impl EventTarget {
    fn build(coin_rank: &[u32], num_coins: usize, rows: &SparseRowMatrix) -> Self {
        let mut coin_rows = SparseRowMatrix::new(num_coins + 1);
        let mut sym_cols = vec![Vec::new(); coin_rank.len()];
        for (r, row) in rows.iter().enumerate() {
            let mut coin_part = Vec::new();
            for &c in row.indices() {
                if c == 0 {
                    coin_part.push(0);
                } else if coin_rank[c as usize] != 0 {
                    coin_part.push(coin_rank[c as usize]);
                } else {
                    sym_cols[c as usize].push(r as u32);
                }
            }
            coin_rows.push_row(SparseBitVec::from_indices(coin_part));
        }
        Self {
            coin_rows,
            sym_cols,
        }
    }
}

/// Buffers a sampling call reuses across its shot batches: the
/// assignment matrix, the blocked-kernel scratch, and the hybrid draw
/// buffers. Held in a thread-local ([`SAMPLE_SCRATCH`]) so chunk-seeded
/// sampling — which enters through `sample_into` once per 4096-shot
/// chunk, serially or on each `sample_par` worker — also reuses them
/// across a thread's chunks instead of reallocating per chunk. Every
/// buffer is re-shaped/refilled on use, so sharing a thread between
/// different samplers is safe.
#[derive(Debug, Default)]
struct SampleScratch {
    assignments: Option<BitMatrix>,
    m4r: symphase_bitmat::M4rScratch,
    coins: Option<BitMatrix>,
    events: Vec<(u32, u32)>,
    fire: Vec<u64>,
    /// Correlated-chain "already fired" mask (see `SymbolGroup::Correlated`).
    chain: Vec<u64>,
}

thread_local! {
    static SAMPLE_SCRATCH: std::cell::RefCell<SampleScratch> =
        std::cell::RefCell::new(SampleScratch::default());
}

impl SymPhaseSampler {
    /// Runs Initialization, choosing the phase store and sampling method
    /// per circuit ([`PhaseRepr::Auto`], [`SamplingMethod::Auto`]).
    pub fn new(circuit: &Circuit) -> Self {
        Self::with_repr(circuit, PhaseRepr::Auto)
    }

    /// Runs Initialization with an explicit phase-store choice.
    pub fn with_repr(circuit: &Circuit, repr: PhaseRepr) -> Self {
        Self::with_config(circuit, repr, SamplingMethod::Auto)
    }

    /// Runs Initialization with explicit phase-store and sampling-method
    /// choices. The method only selects which kernel computes `M · B` —
    /// sampled bits are identical across methods for equal seeds.
    pub fn with_config(circuit: &Circuit, repr: PhaseRepr, method: SamplingMethod) -> Self {
        let init: InitResult = match repr.resolve(circuit) {
            PhaseRepr::Sparse => initialize::<SparsePhases>(circuit),
            PhaseRepr::Dense | PhaseRepr::Auto => initialize::<DensePhases>(circuit),
        };
        Self::from_init(circuit, init, repr, method)
    }

    fn from_init(
        circuit: &Circuit,
        init: InitResult,
        requested_repr: PhaseRepr,
        method: SamplingMethod,
    ) -> Self {
        let cols = init.table.assignment_len();
        let mut meas_rows = SparseRowMatrix::new(cols);
        for e in &init.measurements {
            meas_rows.push_row(e.to_sparse_row());
        }
        let build_derived = |sets: Vec<Vec<usize>>| {
            let mut rows = SparseRowMatrix::new(cols);
            for set in sets {
                let mut acc = SymExpr::zero();
                for m in set {
                    acc.xor_assign(&init.measurements[m]);
                }
                rows.push_row(acc.to_sparse_row());
            }
            rows
        };
        let det_rows = build_derived(detector_measurement_sets(circuit));
        let obs_rows = build_derived(observable_measurement_sets(circuit));
        let auto_method = resolve_auto_from_matrix(&init.table, &meas_rows);
        Self {
            requested_repr,
            method,
            auto_method,
            table: init.table,
            measurement_exprs: init.measurements,
            random_records: init.random_records,
            meas_rows,
            det_rows,
            obs_rows,
            dense_meas: OnceLock::new(),
            dense_det: OnceLock::new(),
            dense_obs: OnceLock::new(),
            hybrid_index: OnceLock::new(),
        }
    }

    /// The phase representation this sampler was requested with
    /// (`Auto` when the per-circuit heuristic chose).
    pub fn requested_repr(&self) -> PhaseRepr {
        self.requested_repr
    }

    /// The sampling method this sampler was requested with (`Auto` when
    /// the per-circuit heuristic chooses).
    pub fn requested_method(&self) -> SamplingMethod {
        self.method
    }

    /// What [`SamplingMethod::Auto`] resolves to on this circuit.
    pub fn resolved_method(&self) -> SamplingMethod {
        self.auto_method
    }

    /// Number of measurement outcomes per shot.
    pub fn num_measurements(&self) -> usize {
        self.measurement_exprs.len()
    }

    /// Number of detectors.
    pub fn num_detectors(&self) -> usize {
        self.det_rows.rows()
    }

    /// Number of observables.
    pub fn num_observables(&self) -> usize {
        self.obs_rows.rows()
    }

    /// The symbol registry built during Initialization.
    pub fn symbol_table(&self) -> &SymbolTable {
        &self.table
    }

    /// The symbolic expression of measurement `m` — which coins and faults
    /// flip it (the fault-sensitivity view of paper Fig. 1).
    pub fn measurement_expr(&self, m: usize) -> SymExpr {
        self.measurement_exprs[m].clone()
    }

    /// All measurement expressions in record order.
    pub fn measurement_exprs(&self) -> &[SymExpr] {
        &self.measurement_exprs
    }

    /// Per record, whether the measurement's collapse was **random** —
    /// the outcome drew a fresh fair coin — as opposed to reading a
    /// determined stabilizer phase. Exact (reported by Initialization at
    /// collapse time), unlike any reconstruction from the symbol table:
    /// resets also allocate coins without recording anything, and
    /// re-measurements inherit earlier coins while staying deterministic.
    pub fn random_measurement_records(&self) -> &[bool] {
        &self.random_records
    }

    /// The symbolic expression of detector `d`. Coins always cancel here;
    /// only fault symbols remain, which is exactly the circuit's
    /// detector-error structure.
    pub fn detector_expr(&self, d: usize) -> SymExpr {
        SymExpr::from_sparse_row(self.det_rows.row(d))
    }

    /// The symbolic expression of observable `o`.
    pub fn observable_expr(&self, o: usize) -> SymExpr {
        SymExpr::from_sparse_row(self.obs_rows.row(o))
    }

    /// The measurement matrix `M` in sparse form.
    pub fn measurement_matrix(&self) -> &SparseRowMatrix {
        &self.meas_rows
    }

    /// The detector rows (XORs of measurement rows) in sparse form.
    pub fn detector_rows(&self) -> &SparseRowMatrix {
        &self.det_rows
    }

    /// The observable rows in sparse form.
    pub fn observable_rows(&self) -> &SparseRowMatrix {
        &self.obs_rows
    }

    /// Sampling (Algorithm 1, line 2): draws `shots` assignment vectors and
    /// multiplies. Output is measurement-major (`num_measurements × shots`).
    pub fn sample(&self, shots: usize, rng: &mut impl Rng) -> BitMatrix {
        self.sample_with_method(shots, rng, SamplingMethod::default())
    }

    /// Shots per internal batch: keeps the assignment matrix `B` small
    /// enough to stay cache-resident while still packing 64 shots per word.
    const SHOT_BATCH: usize = 4096;

    /// Sampling with an explicit multiplication strategy.
    ///
    /// Scratch buffers (the assignment matrix, the blocked-kernel tables,
    /// the hybrid draw buffers) live in a thread-local and are reused
    /// across the internal shot batches *and* across calls on the same
    /// thread (the chunk-seeded sampling paths).
    pub fn sample_with_method(
        &self,
        shots: usize,
        rng: &mut impl Rng,
        method: SamplingMethod,
    ) -> BitMatrix {
        let method = self.resolve_method(method);
        let mut out = BitMatrix::zeros(self.meas_rows.rows(), shots);
        SAMPLE_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            for start in (0..shots).step_by(Self::SHOT_BATCH) {
                let width = Self::SHOT_BATCH.min(shots - start);
                debug_assert_eq!(start % 64, 0, "batch starts must be word-aligned");
                match method {
                    SamplingMethod::Auto => unreachable!("resolved above"),
                    SamplingMethod::Hybrid => {
                        self.draw_hybrid(width, rng, scratch);
                        let idx = self.hybrid_index();
                        let coins = scratch.coins.as_ref().expect("drawn above");
                        apply_hybrid(&idx.meas, coins, &scratch.events, &mut out, start);
                    }
                    SamplingMethod::SparseRows => {
                        let b = fill_assignments(&self.table, &mut scratch.assignments, width, rng);
                        self.meas_rows.mul_dense_into(b, &mut out, start / 64);
                    }
                    SamplingMethod::DenseMatMul => {
                        let b = fill_assignments(&self.table, &mut scratch.assignments, width, rng);
                        let dense = self.dense_meas.get_or_init(|| self.meas_rows.to_dense());
                        dense.mul_into(b, &mut out, start / 64, &mut scratch.m4r);
                    }
                }
            }
        });
        out
    }

    /// `Auto` → the per-circuit pick; fixed methods pass through.
    fn resolve_method(&self, method: SamplingMethod) -> SamplingMethod {
        if method == SamplingMethod::Auto {
            self.auto_method
        } else {
            method
        }
    }

    fn hybrid_index(&self) -> &HybridIndex {
        self.hybrid_index.get_or_init(|| {
            HybridIndex::build(&self.table, &self.meas_rows, &self.det_rows, &self.obs_rows)
        })
    }

    /// Samples measurements, detectors and observables from one shared
    /// assignment draw (columns are shot-aligned across the three
    /// matrices).
    pub fn sample_batch(&self, shots: usize, rng: &mut impl Rng) -> SampleBatch {
        let mut batch = SampleBatch::zeros(
            self.meas_rows.rows(),
            self.det_rows.rows(),
            self.obs_rows.rows(),
            shots,
        );
        self.sample_batch_into(&mut batch, rng);
        batch
    }

    /// In-place variant of [`SymPhaseSampler::sample_batch`]: refills a
    /// pre-shaped [`SampleBatch`] (previous contents are cleared) with the
    /// sampler's configured method.
    pub fn sample_batch_into(&self, batch: &mut SampleBatch, rng: &mut impl Rng) {
        self.sample_batch_with_method(batch, rng, self.method);
    }

    /// [`SymPhaseSampler::sample_batch_into`] with an explicit
    /// multiplication strategy. One assignment draw per shot batch feeds
    /// all three record matrices, whatever the method, so columns stay
    /// shot-aligned and the RNG stream is method-independent.
    ///
    /// The batch is cleared first: every kernel XOR-accumulates, so a
    /// reused batch would otherwise mix draws.
    pub fn sample_batch_with_method(
        &self,
        batch: &mut SampleBatch,
        rng: &mut impl Rng,
        method: SamplingMethod,
    ) {
        let method = self.resolve_method(method);
        let shots = batch.shots();
        batch.clear();
        SAMPLE_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            for start in (0..shots).step_by(Self::SHOT_BATCH) {
                let width = Self::SHOT_BATCH.min(shots - start);
                debug_assert_eq!(start % 64, 0, "batch starts must be word-aligned");
                match method {
                    SamplingMethod::Auto => unreachable!("resolved above"),
                    SamplingMethod::Hybrid => {
                        self.draw_hybrid(width, rng, scratch);
                        let idx = self.hybrid_index();
                        let coins = scratch.coins.as_ref().expect("drawn above");
                        apply_hybrid(
                            &idx.meas,
                            coins,
                            &scratch.events,
                            &mut batch.measurements,
                            start,
                        );
                        apply_hybrid(
                            &idx.det,
                            coins,
                            &scratch.events,
                            &mut batch.detectors,
                            start,
                        );
                        apply_hybrid(
                            &idx.obs,
                            coins,
                            &scratch.events,
                            &mut batch.observables,
                            start,
                        );
                    }
                    SamplingMethod::SparseRows => {
                        let b = fill_assignments(&self.table, &mut scratch.assignments, width, rng);
                        self.meas_rows
                            .mul_dense_into(b, &mut batch.measurements, start / 64);
                        self.det_rows
                            .mul_dense_into(b, &mut batch.detectors, start / 64);
                        self.obs_rows
                            .mul_dense_into(b, &mut batch.observables, start / 64);
                    }
                    SamplingMethod::DenseMatMul => {
                        let b = fill_assignments(&self.table, &mut scratch.assignments, width, rng);
                        self.dense_meas
                            .get_or_init(|| self.meas_rows.to_dense())
                            .mul_into(b, &mut batch.measurements, start / 64, &mut scratch.m4r);
                        self.dense_det
                            .get_or_init(|| self.det_rows.to_dense())
                            .mul_into(b, &mut batch.detectors, start / 64, &mut scratch.m4r);
                        self.dense_obs
                            .get_or_init(|| self.obs_rows.to_dense())
                            .mul_into(b, &mut batch.observables, start / 64, &mut scratch.m4r);
                    }
                }
            }
        });
    }
}

impl Sampler for SymPhaseSampler {
    fn name(&self) -> &'static str {
        match self.requested_repr {
            PhaseRepr::Auto => "symphase",
            PhaseRepr::Sparse => "symphase-sparse",
            PhaseRepr::Dense => "symphase-dense",
        }
    }

    fn num_measurements(&self) -> usize {
        SymPhaseSampler::num_measurements(self)
    }

    fn num_detectors(&self) -> usize {
        SymPhaseSampler::num_detectors(self)
    }

    fn num_observables(&self) -> usize {
        SymPhaseSampler::num_observables(self)
    }

    fn sample_into(&self, batch: &mut SampleBatch, mut rng: &mut dyn RngCore) {
        // `sample_batch_into` clears the batch itself, so reused batches
        // never mix draws.
        self.sample_batch_into(batch, &mut rng);
    }
}

impl SymPhaseSampler {
    /// The [`SamplingMethod::Hybrid`] draw for one shot window: fills the
    /// coin matrix (constant row + one row per coin) and collects every
    /// fired fault as a `(symbol, shot)` event into the scratch.
    ///
    /// Groups are drawn **in allocation order with the same primitives as
    /// [`SymbolTable::sample_assignments`]**, so the RNG stream — and
    /// therefore the sampled bits — are identical across all
    /// [`SamplingMethod`]s. Keep the two in lockstep.
    fn draw_hybrid(&self, width: usize, rng: &mut impl Rng, scratch: &mut SampleScratch) {
        let idx = self.hybrid_index();
        if scratch
            .coins
            .as_ref()
            .is_none_or(|c| c.rows() != idx.num_coins + 1 || c.cols() != width)
        {
            scratch.coins = Some(BitMatrix::zeros(idx.num_coins + 1, width));
        }
        let coins = scratch.coins.as_mut().expect("just ensured");
        let cstride = coins.stride();
        {
            // Row 0: the constant symbol s₀ = 1.
            let tail = symphase_bitmat::word::tail_mask(width);
            let row0 = &mut coins.words_mut()[..cstride];
            row0.iter_mut().for_each(|w| *w = !0);
            if let Some(last) = row0.last_mut() {
                *last &= tail;
            }
        }
        scratch.fire.clear();
        scratch.fire.resize(cstride, 0);
        scratch.chain.clear();
        scratch.chain.resize(cstride, 0);
        scratch.events.clear();
        for group in self.table.groups() {
            match *group {
                SymbolGroup::Coin { id } => {
                    let k = idx.coin_rank[id as usize] as usize;
                    let row = &mut coins.words_mut()[k * cstride..(k + 1) * cstride];
                    fill_bernoulli(row, width, 0.5, rng);
                }
                SymbolGroup::Bernoulli { id, p } => {
                    // No per-event choice draws, so the mask need not be
                    // materialized (same RNG stream either way).
                    for_each_bernoulli_index(p, width, rng, |shot| {
                        scratch.events.push((id, shot as u32));
                    });
                }
                SymbolGroup::Depolarize1 { x_id, z_id, p } => {
                    fill_bernoulli(&mut scratch.fire, width, p, rng);
                    for_each_set_bit(&scratch.fire, |shot| {
                        match rng.random_range(0..3u32) {
                            0 => scratch.events.push((x_id, shot)), // X
                            1 => {
                                scratch.events.push((x_id, shot)); // Y
                                scratch.events.push((z_id, shot));
                            }
                            _ => scratch.events.push((z_id, shot)), // Z
                        }
                    });
                }
                SymbolGroup::Depolarize2 { ids, p } => {
                    fill_bernoulli(&mut scratch.fire, width, p, rng);
                    for_each_set_bit(&scratch.fire, |shot| {
                        let k = rng.random_range(1..16u32);
                        for (j, &id) in ids.iter().enumerate() {
                            if k & (1 << j) != 0 {
                                scratch.events.push((id, shot));
                            }
                        }
                    });
                }
                SymbolGroup::PauliChannel1 {
                    x_id,
                    z_id,
                    px,
                    py,
                    pz,
                } => {
                    let total = px + py + pz;
                    fill_bernoulli(&mut scratch.fire, width, total, rng);
                    for_each_set_bit(&scratch.fire, |shot| {
                        let u: f64 = rng.random::<f64>() * total;
                        if u < px + py {
                            scratch.events.push((x_id, shot));
                        }
                        if u >= px {
                            scratch.events.push((z_id, shot));
                        }
                    });
                }
                SymbolGroup::PauliChannel2 { ids, probs } => {
                    let total: f64 = probs.iter().sum();
                    fill_bernoulli(&mut scratch.fire, width, total.min(1.0), rng);
                    for_each_set_bit(&scratch.fire, |shot| {
                        let u: f64 = rng.random::<f64>() * total;
                        let m = symphase_circuit::pauli_channel_2_select(u, &probs);
                        let bits = symphase_circuit::pauli_channel_2_bits(m);
                        for (j, &id) in ids.iter().enumerate() {
                            if bits[j] {
                                scratch.events.push((id, shot));
                            }
                        }
                    });
                }
                SymbolGroup::Correlated { id, p, else_branch } => {
                    // Same draw primitives and chain masking as the
                    // assignment-matrix path, so the RNG stream — and the
                    // sampled bits — stay method-independent.
                    fill_bernoulli(&mut scratch.fire, width, p, rng);
                    if else_branch {
                        for (f, c) in scratch.fire.iter_mut().zip(scratch.chain.iter_mut()) {
                            *f &= !*c;
                            *c |= *f;
                        }
                    } else {
                        scratch.chain.copy_from_slice(&scratch.fire);
                    }
                    for_each_set_bit(&scratch.fire, |shot| {
                        scratch.events.push((id, shot));
                    });
                }
            }
        }
    }
}

/// Calls `f` with the index of every set bit, in ascending order (the
/// same order the merged assignment-matrix draw visits fired shots).
fn for_each_set_bit(words: &[u64], mut f: impl FnMut(u32)) {
    for (w, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let shot = (w * 64) as u32 + bits.trailing_zeros();
            bits &= bits - 1;
            f(shot);
        }
    }
}

/// Applies one hybrid draw to one record matrix: the coin part as a dense
/// product through the target's coin-restricted rows, the fault part as
/// per-event bit flips through the symbol → rows index.
fn apply_hybrid(
    target: &EventTarget,
    coins: &BitMatrix,
    events: &[(u32, u32)],
    out: &mut BitMatrix,
    start: usize,
) {
    debug_assert_eq!(start % 64, 0, "batch starts must be word-aligned");
    target.coin_rows.mul_dense_into(coins, out, start / 64);
    let ostride = out.stride();
    let words = out.words_mut();
    for &(id, shot) in events {
        let col = start + shot as usize;
        let (w, mask) = (col / 64, 1u64 << (col % 64));
        for &m in &target.sym_cols[id as usize] {
            words[m as usize * ostride + w] ^= mask;
        }
    }
}

/// Relative cost of one event-driven bit flip versus one word of a
/// streaming row XOR: flips are scattered read-modify-writes (plus their
/// share of the geometric draw), worth roughly a cache line each, while
/// row XORs stream 64 shots per word.
const FLIP_COST: f64 = 8.0;

/// [`SamplingMethod::Auto`] resolution from what Initialization actually
/// built (the precise counterpart of the statistics-only estimate in
/// [`SamplingMethod::resolve`]). Costs are per 64-shot word:
///
/// * `Hybrid` — the coin-restricted product plus, per fault symbol, its
///   fire probability times the rows it touches, weighted by
///   [`FLIP_COST`] (events are scattered single-bit flips).
/// * matrix product — one word XOR per set bit of `M`; within that, the
///   blocked kernel wins once rows average more set bits than the kernel
///   has 8-bit column groups (one table lookup replaces up to 8 gathers).
fn resolve_auto_from_matrix(table: &SymbolTable, meas_rows: &SparseRowMatrix) -> SamplingMethod {
    let len = table.assignment_len();
    let mut colcount = vec![0u32; len];
    let mut nnz = 0usize;
    for row in meas_rows.iter() {
        for &c in row.indices() {
            colcount[c as usize] += 1;
            nnz += 1;
        }
    }
    // Constant + coin columns are multiplied densely by the hybrid path.
    let mut coin_nnz = colcount[0] as f64;
    // Expected fault-bit flips per shot: marginal fire probability of
    // each symbol times the measurement rows containing it.
    let mut flips_per_shot = 0.0;
    // Probability that the current correlated chain has not fired yet
    // (groups are visited in allocation order, chains contiguous).
    let mut chain_none = 1.0;
    for group in table.groups() {
        match *group {
            SymbolGroup::Coin { id } => coin_nnz += colcount[id as usize] as f64,
            SymbolGroup::Bernoulli { id, p } => {
                flips_per_shot += p * colcount[id as usize] as f64;
            }
            SymbolGroup::Depolarize1 { x_id, z_id, p } => {
                // Each component fires in 2 of the 3 equiprobable faults.
                let marginal = 2.0 * p / 3.0;
                flips_per_shot +=
                    marginal * (colcount[x_id as usize] + colcount[z_id as usize]) as f64;
            }
            SymbolGroup::Depolarize2 { ids, p } => {
                // Each of the four symbols is set in 8 of the 15 Paulis.
                let marginal = 8.0 * p / 15.0;
                for id in ids {
                    flips_per_shot += marginal * colcount[id as usize] as f64;
                }
            }
            SymbolGroup::PauliChannel1 {
                x_id,
                z_id,
                px,
                py,
                pz,
            } => {
                flips_per_shot += (px + py) * colcount[x_id as usize] as f64
                    + (py + pz) * colcount[z_id as usize] as f64;
            }
            SymbolGroup::PauliChannel2 { ids, probs } => {
                // Marginal of each symbol: sum of the outcomes setting it.
                let mut marginals = [0.0f64; 4];
                for (m, &p) in probs.iter().enumerate() {
                    let bits = symphase_circuit::pauli_channel_2_bits(m + 1);
                    for (j, marg) in marginals.iter_mut().enumerate() {
                        if bits[j] {
                            *marg += p;
                        }
                    }
                }
                for (j, &id) in ids.iter().enumerate() {
                    flips_per_shot += marginals[j] * colcount[id as usize] as f64;
                }
            }
            SymbolGroup::Correlated { id, p, else_branch } => {
                let marginal = if else_branch { chain_none * p } else { p };
                if else_branch {
                    chain_none *= 1.0 - p;
                } else {
                    chain_none = 1.0 - p;
                }
                flips_per_shot += marginal * colcount[id as usize] as f64;
            }
        }
    }
    let hybrid_cost = coin_nnz + FLIP_COST * 64.0 * flips_per_shot;
    let matrix_cost = nnz as f64;
    if hybrid_cost < matrix_cost {
        SamplingMethod::Hybrid
    } else if nnz > meas_rows.rows().max(1) * len.div_ceil(8) {
        SamplingMethod::DenseMatMul
    } else {
        SamplingMethod::SparseRows
    }
}

/// Ensures `slot` holds an `assignment_len × width` matrix and refills it
/// from the table; reallocation happens only when the width changes (the
/// final, narrower shot batch).
fn fill_assignments<'a>(
    table: &SymbolTable,
    slot: &'a mut Option<BitMatrix>,
    width: usize,
    rng: &mut impl Rng,
) -> &'a BitMatrix {
    if slot
        .as_ref()
        .is_none_or(|b| b.rows() != table.assignment_len() || b.cols() != width)
    {
        *slot = Some(BitMatrix::zeros(table.assignment_len(), width));
    }
    let b = slot.as_mut().expect("just ensured");
    table.sample_assignments_into(b, rng);
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symphase_circuit::generators::{
        bell_pair, ghz, repetition_code_memory, teleportation, RepetitionCodeConfig,
    };
    use symphase_circuit::NoiseChannel;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn bell_pair_correlated_and_fair() {
        let s = SymPhaseSampler::new(&bell_pair());
        let shots = 20_000;
        let out = s.sample(shots, &mut rng(1));
        let mut ones = 0usize;
        for shot in 0..shots {
            assert_eq!(out.get(0, shot), out.get(1, shot));
            ones += usize::from(out.get(0, shot));
        }
        assert!((ones as f64 - shots as f64 / 2.0).abs() < 6.0 * (shots as f64 / 4.0).sqrt());
    }

    #[test]
    fn ghz_shots_internally_consistent() {
        let s = SymPhaseSampler::new(&ghz(5));
        let out = s.sample(300, &mut rng(2));
        for shot in 0..300 {
            let v = out.get(0, shot);
            for q in 1..5 {
                assert_eq!(out.get(q, shot), v);
            }
        }
    }

    #[test]
    fn sparse_and_dense_multiplication_agree() {
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 4,
            rounds: 3,
            data_error: 0.1,
            measure_error: 0.05,
        });
        let s = SymPhaseSampler::new(&c);
        let a = s.sample_with_method(500, &mut rng(3), SamplingMethod::SparseRows);
        let b = s.sample_with_method(500, &mut rng(3), SamplingMethod::DenseMatMul);
        assert_eq!(a, b);
    }

    #[test]
    fn dense_and_sparse_phase_stores_agree() {
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 3,
            rounds: 2,
            data_error: 0.2,
            measure_error: 0.1,
        });
        let s1 = SymPhaseSampler::with_repr(&c, PhaseRepr::Sparse);
        let s2 = SymPhaseSampler::with_repr(&c, PhaseRepr::Dense);
        assert_eq!(s1.measurement_exprs(), s2.measurement_exprs());
    }

    #[test]
    fn teleportation_last_outcome_always_zero() {
        let s = SymPhaseSampler::new(&teleportation());
        let out = s.sample(2000, &mut rng(4));
        for shot in 0..2000 {
            assert!(!out.get(2, shot));
        }
    }

    #[test]
    fn batch_reuse_does_not_mix_draws() {
        // The kernels XOR-accumulate, so the batch paths must clear a
        // reused batch before refilling it.
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 3,
            rounds: 2,
            data_error: 0.1,
            measure_error: 0.1,
        });
        let s = SymPhaseSampler::new(&c);
        let mut batch = s.sample_batch(300, &mut rng(41));
        s.sample_batch_into(&mut batch, &mut rng(42));
        assert_eq!(batch, s.sample_batch(300, &mut rng(42)));
    }

    #[test]
    fn noiseless_detectors_never_fire() {
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 5,
            rounds: 4,
            data_error: 0.0,
            measure_error: 0.0,
        });
        let s = SymPhaseSampler::new(&c);
        let batch = s.sample_batch(400, &mut rng(5));
        assert_eq!(batch.detectors.count_ones(), 0);
        assert_eq!(batch.observables.count_ones(), 0);
    }

    #[test]
    fn detector_expressions_contain_no_coins() {
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 3,
            rounds: 3,
            data_error: 0.01,
            measure_error: 0.01,
        });
        let s = SymPhaseSampler::new(&c);
        let coin_ids: std::collections::HashSet<u32> = s
            .symbol_table()
            .groups()
            .iter()
            .filter_map(|g| match g {
                crate::symbol::SymbolGroup::Coin { id } => Some(*id),
                _ => None,
            })
            .collect();
        for d in 0..s.num_detectors() {
            let e = s.detector_expr(d);
            assert!(!e.constant_term(), "detector {d} has constant term");
            for &id in e.symbol_ids() {
                assert!(
                    !coin_ids.contains(&id),
                    "detector {d} depends on coin s{id}"
                );
            }
        }
    }

    #[test]
    fn detectors_fire_at_noise_dependent_rate() {
        let p = 0.15;
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 3,
            rounds: 2,
            data_error: p,
            measure_error: 0.0,
        });
        let s = SymPhaseSampler::new(&c);
        let shots = 50_000;
        let batch = s.sample_batch(shots, &mut rng(6));
        // First-round detector d0 = data0 ⊕ data2 flips: fires iff exactly
        // one of the two X faults hit: 2p(1−p).
        let expect = 2.0 * p * (1.0 - p) * shots as f64;
        let fired = (0..shots).filter(|&i| batch.detectors.get(0, i)).count();
        assert!(
            (fired as f64 - expect).abs() < 6.0 * expect.sqrt() + 20.0,
            "detector rate {fired} vs expected {expect}"
        );
    }

    #[test]
    fn x_error_rate_propagates() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::XError(0.1), &[0]);
        c.noise(NoiseChannel::XError(0.1), &[0]);
        c.measure(0);
        let s = SymPhaseSampler::new(&c);
        // Outcome = s1 ⊕ s2: fires with 2·0.1·0.9 = 0.18.
        assert_eq!(s.measurement_expr(0).to_string(), "s1 ⊕ s2");
        let shots = 100_000;
        let out = s.sample(shots, &mut rng(7));
        let ones = (0..shots).filter(|&i| out.get(0, i)).count();
        let expect = 0.18 * shots as f64;
        assert!((ones as f64 - expect).abs() < 6.0 * (expect * 0.82).sqrt());
    }

    #[test]
    fn empty_circuit_samples_empty() {
        let c = Circuit::new(3);
        let s = SymPhaseSampler::new(&c);
        let out = s.sample(10, &mut rng(8));
        assert_eq!(out.rows(), 0);
        assert_eq!(out.cols(), 10);
    }
}
