//! Symbolic XOR expressions over bit-symbols.

use std::fmt;

use symphase_bitmat::{BitVec, SparseBitVec};

use crate::symbol::SymbolId;

/// A symbolic expression `c ⊕ s_{j1} ⊕ s_{j2} ⊕ …` over bit-symbols with a
/// constant term — the value of a measurement outcome, detector, or
/// observable under phase symbolization (paper §3.1).
///
/// # Example
///
/// ```
/// use symphase_core::SymExpr;
///
/// let mut e = SymExpr::from_symbols([1, 3]);
/// assert_eq!(e.to_string(), "s1 ⊕ s3");
/// e.xor_constant(true);
/// e.xor_symbol(3);
/// assert_eq!(e.to_string(), "1 ⊕ s1");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SymExpr {
    constant: bool,
    /// Sorted symbol ids (≥ 1).
    symbols: SparseBitVec,
}

impl SymExpr {
    /// The constant-0 expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// The expression equal to a single symbol.
    pub fn symbol(id: SymbolId) -> Self {
        assert!(id >= 1, "symbol ids start at 1 (0 is the constant)");
        Self {
            constant: false,
            symbols: SparseBitVec::singleton(id),
        }
    }

    /// An expression from several symbol ids (duplicates cancel).
    pub fn from_symbols<I: IntoIterator<Item = SymbolId>>(ids: I) -> Self {
        Self {
            constant: false,
            symbols: ids.into_iter().collect(),
        }
    }

    /// A constant expression.
    pub fn constant(value: bool) -> Self {
        Self {
            constant: value,
            symbols: SparseBitVec::new(),
        }
    }

    /// The constant term.
    pub fn constant_term(&self) -> bool {
        self.constant
    }

    /// The symbol ids present, sorted ascending.
    pub fn symbol_ids(&self) -> &[u32] {
        self.symbols.indices()
    }

    /// `true` if the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        !self.constant && self.symbols.is_zero()
    }

    /// `true` if no symbols appear (the value is a constant).
    pub fn is_constant(&self) -> bool {
        self.symbols.is_zero()
    }

    /// Flips the constant term if `value`.
    pub fn xor_constant(&mut self, value: bool) {
        self.constant ^= value;
    }

    /// Toggles one symbol.
    pub fn xor_symbol(&mut self, id: SymbolId) {
        assert!(id >= 1, "symbol ids start at 1");
        self.symbols.flip(id);
    }

    /// XORs another expression into this one.
    pub fn xor_assign(&mut self, other: &SymExpr) {
        self.constant ^= other.constant;
        self.symbols.xor_assign(&other.symbols);
    }

    /// Evaluates under a concrete assignment: `assignment` has one bit per
    /// symbol id (index 0 unused/constant — it is ignored; the constant
    /// term comes from the expression itself).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the largest symbol id.
    pub fn eval(&self, assignment: &BitVec) -> bool {
        self.constant ^ self.symbols.eval(assignment)
    }

    /// The sparse phase-vector row over `F₂^{n_s+1}` (index 0 = constant) —
    /// the `m` bit-vector of paper §3.2.1.
    pub fn to_sparse_row(&self) -> SparseBitVec {
        let mut row = self.symbols.clone();
        if self.constant {
            row.flip(0);
        }
        row
    }

    /// Builds an expression from a sparse phase-vector row (index 0 =
    /// constant).
    pub fn from_sparse_row(row: &SparseBitVec) -> Self {
        let mut symbols = row.clone();
        let constant = row.get(0);
        if constant {
            symbols.flip(0);
        }
        Self { constant, symbols }
    }

    /// Number of symbols in the expression.
    pub fn weight(&self) -> usize {
        self.symbols.count_ones()
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        if self.constant {
            write!(f, "1")?;
            first = false;
        }
        for &id in self.symbols.indices() {
            if !first {
                write!(f, " ⊕ ")?;
            }
            write!(f, "s{id}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(SymExpr::zero().to_string(), "0");
        assert_eq!(SymExpr::constant(true).to_string(), "1");
        assert_eq!(SymExpr::symbol(2).to_string(), "s2");
        let mut e = SymExpr::from_symbols([4, 1]);
        e.xor_constant(true);
        assert_eq!(e.to_string(), "1 ⊕ s1 ⊕ s4");
    }

    #[test]
    fn xor_cancels() {
        let mut e = SymExpr::symbol(3);
        e.xor_assign(&SymExpr::symbol(3));
        assert!(e.is_zero());
        let mut e = SymExpr::from_symbols([1, 2]);
        e.xor_assign(&SymExpr::from_symbols([2, 5]));
        assert_eq!(e.symbol_ids(), &[1, 5]);
    }

    #[test]
    fn eval_under_assignment() {
        let mut assign = BitVec::zeros(6);
        assign.set(1, true);
        assign.set(5, true);
        let e = SymExpr::from_symbols([1, 5]);
        assert!(!e.eval(&assign)); // 1 ⊕ 1
        let e = SymExpr::from_symbols([1, 2]);
        assert!(e.eval(&assign)); // 1 ⊕ 0
        let mut e = SymExpr::from_symbols([1, 2]);
        e.xor_constant(true);
        assert!(!e.eval(&assign));
    }

    #[test]
    fn sparse_row_roundtrip() {
        let mut e = SymExpr::from_symbols([2, 7]);
        e.xor_constant(true);
        let row = e.to_sparse_row();
        assert_eq!(row.indices(), &[0, 2, 7]);
        assert_eq!(SymExpr::from_sparse_row(&row), e);
    }

    #[test]
    #[should_panic(expected = "start at 1")]
    fn symbol_zero_rejected() {
        SymExpr::symbol(0);
    }
}
