//! SymPhase: phase symbolization for fast sampling of stabilizer circuits.
//!
//! This crate implements the paper's contribution — **Algorithm 1**. Possible
//! Pauli faults and measurement coins are accumulated as *symbolic
//! expressions* in the phases of the stabilizer tableau while the circuit is
//! traversed **once** (Initialization). Every measurement outcome becomes an
//! XOR expression over bit-symbols, encoded as a bit-vector (paper §3.2.1);
//! drawing `n_smp` samples is then a single F₂ matrix multiplication
//! `M_samples = M · B` (paper Eq. (4), Sampling).
//!
//! The tableau machinery is shared with the concrete simulator through the
//! [`symphase_tableau::PhaseStore`] abstraction; this crate supplies the two
//! symbolic stores (paper Eq. (3)):
//!
//! * [`DensePhases`] — one packed coefficient row per generator;
//! * [`SparsePhases`] — sorted symbol lists per generator, matching the
//!   paper's observation that QEC-style circuits keep phases sparse.
//!
//! Extensions beyond the paper's evaluation (anticipated in its §6):
//! classically-controlled Paulis `X^e` (dynamic circuits, used for `R`/`MR`
//! and feedback), and detector/observable sampling through the same matrix
//! multiplication.
//!
//! # Example
//!
//! ```
//! use symphase_circuit::Circuit;
//! use symphase_core::SymPhaseSampler;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1);
//! c.measure_all();
//! // Initialization: one traversal of the circuit.
//! let sampler = SymPhaseSampler::new(&c);
//! // Sampling: one bit-matrix multiplication for any number of shots.
//! let samples = sampler.sample(1000, &mut StdRng::seed_from_u64(3));
//! for shot in 0..1000 {
//!     assert_eq!(samples.get(0, shot), samples.get(1, shot));
//! }
//! ```

mod dem;
mod engine;
mod expr;
mod phases;
mod sampler;
mod symbol;

pub use dem::{DemError, DetectorErrorModel};
pub use expr::SymExpr;
pub use phases::{DensePhases, SparsePhases, SymbolicPhases};
pub use sampler::{PhaseRepr, SampleBatch, SamplingMethod, SymPhaseSampler};
pub use symbol::{SymbolGroup, SymbolId, SymbolTable};
