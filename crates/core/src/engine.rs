//! The Initialization procedure of Algorithm 1: one symbolic traversal.
//!
//! Walks the circuit once, applying Init-C (Clifford gates through the
//! shared tableau), Init-P (faults as symbol-coefficient flips), and Init-M
//! (measurements: random outcomes become fresh coins + `X^s`, determined
//! outcomes are read off the scratch row). Resets and feedback reuse the
//! `X^e` mechanism of paper §6.

use symphase_circuit::{
    pauli_product_plan, Circuit, Instruction, NoiseChannel, PauliFactor, PauliKind,
};
use symphase_tableau::{Collapse, Tableau};

use crate::expr::SymExpr;
use crate::phases::SymbolicPhases;
use crate::symbol::{SymbolId, SymbolTable};

/// Everything the Initialization produces: symbol distributions and the
/// symbolic expression of each measurement outcome.
#[derive(Clone, Debug)]
pub(crate) struct InitResult {
    pub table: SymbolTable,
    pub measurements: Vec<SymExpr>,
    /// Per record: whether the collapse drew a fresh coin (random
    /// outcome) rather than reading a determined stabilizer phase.
    /// Resets also collapse, but record nothing and so appear nowhere
    /// here.
    pub random_records: Vec<bool>,
}

/// Runs Initialization with the chosen symbolic phase store.
///
/// The circuit is traversed through the streaming
/// [`Circuit::flat_instructions`] iterator, so structured `REPEAT` blocks
/// execute without ever being materialized: a `REPEAT 1000000 { … }` round
/// costs O(body) memory on top of the tableau and the per-measurement
/// expressions. Record lookbacks (feedback) resolve dynamically against
/// the record built so far, which inside a repeat body means the previous
/// iteration when the lookback reaches past the current one.
pub(crate) fn initialize<S: SymbolicPhases>(circuit: &Circuit) -> InitResult {
    let n = circuit.num_qubits() as usize;
    let mut tab: Tableau<S> = Tableau::new(n);
    // Destabilizer phases never influence outcomes — skip their symbol
    // bookkeeping (see `SymbolicPhases::set_symbol_tracking_floor`).
    tab.phases_mut().set_symbol_tracking_floor(n);
    let mut table = SymbolTable::new();
    let mut measurements: Vec<SymExpr> = Vec::with_capacity(circuit.num_measurements());
    let mut random_records: Vec<bool> = Vec::with_capacity(circuit.num_measurements());
    // One shared fault-mask scratch row for the whole traversal: every
    // path that conjugates a (symbolic or expression-controlled) Pauli —
    // noise channels, the reset half of R/MR, and feedback — fills and
    // reuses this single buffer.
    let mut mask = vec![0u64; tab.words_per_col()];

    for inst in circuit.flat_instructions() {
        match inst {
            Instruction::Gate { gate, targets } => tab.apply_gate(*gate, targets),
            Instruction::Noise { channel, targets } => {
                apply_channel(&mut tab, &mut table, &mut mask, *channel, targets);
            }
            Instruction::Measure { basis, targets } => {
                for &q in targets {
                    let (e, random) =
                        measure_basis_symbolic(&mut tab, &mut table, *basis, q as usize);
                    measurements.push(e);
                    random_records.push(random);
                }
            }
            Instruction::Reset { basis, targets } => {
                for &q in targets {
                    reset_basis_symbolic(&mut tab, &mut table, &mut mask, *basis, q as usize);
                }
            }
            Instruction::MeasureReset { basis, targets } => {
                for &q in targets {
                    let (e, random) = conjugated(&mut tab, *basis, q as usize, |tab| {
                        let (e, random) = measure_symbolic(tab, &mut table, q as usize);
                        apply_expr_fault(tab, &mut mask, PauliKind::X, q as usize, &e);
                        (e, random)
                    });
                    measurements.push(e);
                    random_records.push(random);
                }
            }
            Instruction::MeasurePauliProduct { products } => {
                for product in products {
                    let (e, random) = measure_product_symbolic(&mut tab, &mut table, product);
                    measurements.push(e);
                    random_records.push(random);
                }
            }
            Instruction::CorrelatedError {
                probability,
                product,
                else_branch,
            } => {
                // One symbol for the whole product: every factor's fault
                // mask is XORed with the same coefficient, so the product
                // fires atomically (the per-Pauli injection of Table 1
                // lifted to correlated multi-qubit channels).
                let s = table.fresh_correlated(*probability, *else_branch);
                for &(kind, q) in product {
                    apply_symbol_fault(&mut tab, &mut mask, kind, q as usize, s);
                }
            }
            Instruction::Feedback {
                pauli,
                lookback,
                target,
            } => {
                let idx = (measurements.len() as i64 + lookback) as usize;
                let e = measurements[idx].clone();
                apply_expr_fault(&mut tab, &mut mask, *pauli, *target as usize, &e);
            }
            Instruction::Detector { .. }
            | Instruction::ObservableInclude { .. }
            | Instruction::Tick
            | Instruction::QubitCoords { .. }
            | Instruction::ShiftCoords { .. } => {}
            Instruction::Repeat { .. } => {
                unreachable!("flat_instructions expands REPEAT blocks")
            }
        }
    }

    InitResult {
        table,
        measurements,
        random_records,
    }
}

/// Init-P: decomposes a noise channel into symbolic single-qubit faults.
fn apply_channel<S: SymbolicPhases>(
    tab: &mut Tableau<S>,
    table: &mut SymbolTable,
    mask: &mut [u64],
    channel: NoiseChannel,
    targets: &[u32],
) {
    match channel {
        NoiseChannel::XError(p) => {
            for &q in targets {
                let s = table.fresh_bernoulli(p);
                apply_symbol_fault(tab, mask, PauliKind::X, q as usize, s);
            }
        }
        NoiseChannel::YError(p) => {
            for &q in targets {
                let s = table.fresh_bernoulli(p);
                apply_symbol_fault(tab, mask, PauliKind::Y, q as usize, s);
            }
        }
        NoiseChannel::ZError(p) => {
            for &q in targets {
                let s = table.fresh_bernoulli(p);
                apply_symbol_fault(tab, mask, PauliKind::Z, q as usize, s);
            }
        }
        NoiseChannel::Depolarize1(p) => {
            for &q in targets {
                let (sx, sz) = table.fresh_depolarize1(p);
                apply_symbol_fault(tab, mask, PauliKind::X, q as usize, sx);
                apply_symbol_fault(tab, mask, PauliKind::Z, q as usize, sz);
            }
        }
        NoiseChannel::Depolarize2(p) => {
            for pair in targets.chunks_exact(2) {
                let [xa, za, xb, zb] = table.fresh_depolarize2(p);
                apply_symbol_fault(tab, mask, PauliKind::X, pair[0] as usize, xa);
                apply_symbol_fault(tab, mask, PauliKind::Z, pair[0] as usize, za);
                apply_symbol_fault(tab, mask, PauliKind::X, pair[1] as usize, xb);
                apply_symbol_fault(tab, mask, PauliKind::Z, pair[1] as usize, zb);
            }
        }
        NoiseChannel::PauliChannel1 { px, py, pz } => {
            for &q in targets {
                let (sx, sz) = table.fresh_pauli_channel1(px, py, pz);
                apply_symbol_fault(tab, mask, PauliKind::X, q as usize, sx);
                apply_symbol_fault(tab, mask, PauliKind::Z, q as usize, sz);
            }
        }
        NoiseChannel::PauliChannel2 { probs } => {
            for pair in targets.chunks_exact(2) {
                let [xa, za, xb, zb] = table.fresh_pauli_channel2(probs);
                apply_symbol_fault(tab, mask, PauliKind::X, pair[0] as usize, xa);
                apply_symbol_fault(tab, mask, PauliKind::Z, pair[0] as usize, za);
                apply_symbol_fault(tab, mask, PauliKind::X, pair[1] as usize, xb);
                apply_symbol_fault(tab, mask, PauliKind::Z, pair[1] as usize, zb);
            }
        }
    }
}

/// Fills `mask` with the rows whose phase flips under a `kind` fault on
/// qubit `q`: rows anticommuting with the fault Pauli.
fn fault_mask<S: SymbolicPhases>(tab: &Tableau<S>, kind: PauliKind, q: usize, mask: &mut [u64]) {
    let (x_col, z_col) = (tab.x_col(q), tab.z_col(q));
    match kind {
        PauliKind::X => mask.copy_from_slice(z_col),
        PauliKind::Z => mask.copy_from_slice(x_col),
        PauliKind::Y => {
            for (m, (x, z)) in mask.iter_mut().zip(x_col.iter().zip(z_col)) {
                *m = x ^ z;
            }
        }
    }
}

/// Applies the symbolic fault `kind^s` on qubit `q` (paper Init-P / Fact 1).
fn apply_symbol_fault<S: SymbolicPhases>(
    tab: &mut Tableau<S>,
    mask: &mut [u64],
    kind: PauliKind,
    q: usize,
    sym: SymbolId,
) {
    fault_mask(tab, kind, q, mask);
    let phases = tab.phases_mut();
    phases.ensure_symbol_capacity(sym);
    for (w, &m) in mask.iter().enumerate() {
        if m != 0 {
            phases.xor_symbol_word(sym, w, m);
        }
    }
}

/// Applies a classically-controlled Pauli `kind^e` on qubit `q` (paper §6).
fn apply_expr_fault<S: SymbolicPhases>(
    tab: &mut Tableau<S>,
    mask: &mut [u64],
    kind: PauliKind,
    q: usize,
    expr: &SymExpr,
) {
    if expr.is_zero() {
        return;
    }
    fault_mask(tab, kind, q, mask);
    let phases = tab.phases_mut();
    if let Some(&max) = expr.symbol_ids().last() {
        phases.ensure_symbol_capacity(max);
    }
    for (w, &m) in mask.iter().enumerate() {
        if m != 0 {
            phases.xor_expr_word(expr, w, m);
        }
    }
}

/// Init-M: symbolic Z-basis measurement of qubit `q`.
///
/// Random case: the symbolic analogue of A-G's `r_p := coin` — a fresh fair
/// coin `s` becomes the phase of the new stabilizer `Z_q` and is recorded as
/// the outcome. (The paper's prose describes this as "fix the outcome to 0
/// and apply `X^s` at the measured qubit", but a conjugating `X^s` would
/// also flip every *other* generator containing `Z_q`, breaking
/// measurement correlations; the paper's own §3.1 tableau shows the coin
/// entering only the new stabilizer row, which is what we do. See
/// DESIGN.md.)
fn measure_symbolic<S: SymbolicPhases>(
    tab: &mut Tableau<S>,
    table: &mut SymbolTable,
    q: usize,
) -> (SymExpr, bool) {
    match tab.collapse_z(q) {
        Collapse::Random { pivot } => {
            let s = table.fresh_coin();
            let phases = tab.phases_mut();
            phases.ensure_symbol_capacity(s);
            let (w, b) = (pivot / 64, pivot % 64);
            phases.xor_symbol_word(s, w, 1u64 << b);
            (SymExpr::symbol(s), true)
        }
        Collapse::Deterministic => {
            tab.accumulate_deterministic(q);
            (tab.phases().row_expr(tab.scratch_row()), false)
        }
    }
}

/// Runs `f` inside the basis conjugation of `basis` on qubit `q` (the
/// self-inverse `H` / `H_YZ` basis change applied symbolically before and
/// after), reducing X/Y-basis operations to the Z-basis Init-M machinery.
fn conjugated<S: SymbolicPhases, T>(
    tab: &mut Tableau<S>,
    basis: PauliKind,
    q: usize,
    f: impl FnOnce(&mut Tableau<S>) -> T,
) -> T {
    let gate = basis.z_conjugator();
    if let Some(g) = gate {
        tab.apply_gate(g, &[q as u32]);
    }
    let out = f(tab);
    if let Some(g) = gate {
        tab.apply_gate(g, &[q as u32]);
    }
    out
}

/// Init-M in an arbitrary single-qubit basis (`MX`/`MY`/`M`).
fn measure_basis_symbolic<S: SymbolicPhases>(
    tab: &mut Tableau<S>,
    table: &mut SymbolTable,
    basis: PauliKind,
    q: usize,
) -> (SymExpr, bool) {
    conjugated(tab, basis, q, |tab| measure_symbolic(tab, table, q))
}

/// Basis-general reset: collapse in the basis, then the `X^e` correction
/// (inside the conjugated frame) forces the `+1` eigenstate.
fn reset_basis_symbolic<S: SymbolicPhases>(
    tab: &mut Tableau<S>,
    table: &mut SymbolTable,
    mask: &mut [u64],
    basis: PauliKind,
    q: usize,
) {
    conjugated(tab, basis, q, |tab| {
        let (e, _) = measure_symbolic(tab, table, q);
        apply_expr_fault(tab, mask, PauliKind::X, q, &e);
    });
}

/// The `measure(P)` generalization of Init-M: conjugate the product onto
/// `Z_anchor` through the shared [`pauli_product_plan`], measure
/// symbolically, uncompute. The whole reduction is conjugation through
/// the tableau, so it costs the same `O(n)`-per-gate work as Init-C.
fn measure_product_symbolic<S: SymbolicPhases>(
    tab: &mut Tableau<S>,
    table: &mut SymbolTable,
    product: &[PauliFactor],
) -> (SymExpr, bool) {
    let (ops, anchor) = pauli_product_plan(product);
    for op in &ops {
        tab.apply_gate(op.gate, op.targets());
    }
    let e = measure_symbolic(tab, table, anchor as usize);
    for op in ops.iter().rev() {
        tab.apply_gate(op.gate, op.targets());
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::{DensePhases, SparsePhases};
    use symphase_circuit::Circuit;

    fn exprs<S: SymbolicPhases>(c: &Circuit) -> Vec<String> {
        initialize::<S>(c)
            .measurements
            .iter()
            .map(|e| e.to_string())
            .collect()
    }

    /// The worked example of paper §3.1: H; CX; X^s1; X^s2; M; M.
    #[test]
    fn sec_3_1_worked_example() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.noise(NoiseChannel::XError(0.1), &[0]); // s1
        c.noise(NoiseChannel::XError(0.1), &[1]); // s2
        c.measure(0);
        c.measure(1);
        for result in [exprs::<SparsePhases>(&c), exprs::<DensePhases>(&c)] {
            assert_eq!(result, vec!["s3".to_string(), "s1 ⊕ s2 ⊕ s3".to_string()]);
        }
    }

    /// The overview example of paper Fig. 1: GHZ preparation, faults
    /// Z^s1 X^s2 X^s3 X^s4, un-preparation, measure all. Expected outcomes
    /// m1 = s1, m2 = s2, m3 = s2⊕s3, m4 = s3⊕s4.
    #[test]
    fn fig_1_worked_example() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        c.noise(NoiseChannel::ZError(0.1), &[0]); // s1
        c.noise(NoiseChannel::XError(0.1), &[1]); // s2
        c.noise(NoiseChannel::XError(0.1), &[2]); // s3
        c.noise(NoiseChannel::XError(0.1), &[3]); // s4
        c.cx(2, 3).cx(1, 2).cx(0, 1).h(0);
        c.measure_all();
        for result in [exprs::<SparsePhases>(&c), exprs::<DensePhases>(&c)] {
            assert_eq!(
                result,
                vec![
                    "s1".to_string(),
                    "s2".to_string(),
                    "s2 ⊕ s3".to_string(),
                    "s3 ⊕ s4".to_string(),
                ]
            );
        }
    }

    #[test]
    fn deterministic_one_has_constant_term() {
        let mut c = Circuit::new(1);
        c.x(0);
        c.measure(0);
        assert_eq!(exprs::<SparsePhases>(&c), vec!["1".to_string()]);
    }

    #[test]
    fn bell_pair_shares_one_coin() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.measure_all();
        let r = initialize::<SparsePhases>(&c);
        assert_eq!(r.measurements[0], r.measurements[1]);
        assert_eq!(r.table.num_coins(), 1);
    }

    #[test]
    fn repeated_measurement_reuses_coin() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.measure(0);
        c.measure(0);
        let r = initialize::<SparsePhases>(&c);
        assert_eq!(r.measurements[0], r.measurements[1]);
        assert_eq!(r.table.num_coins(), 1);
    }

    #[test]
    fn reset_after_x_error_discards_fault() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::XError(0.5), &[0]);
        c.reset(0);
        c.measure(0);
        let r = initialize::<SparsePhases>(&c);
        assert!(
            r.measurements[0].is_zero(),
            "reset must clear the fault symbol"
        );
    }

    #[test]
    fn measure_reset_records_fault_then_clears() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::XError(0.5), &[0]); // s1
        c.measure_reset(0);
        c.measure(0);
        let r = initialize::<SparsePhases>(&c);
        assert_eq!(r.measurements[0].to_string(), "s1");
        assert!(r.measurements[1].is_zero());
    }

    #[test]
    fn feedback_cancels_dependency() {
        // m0 = s1; feedback X^{m0} on qubit 1 that also carries X^{s1}:
        // measuring qubit 1 then gives s1 ⊕ s1 = 0.
        let mut c = Circuit::new(2);
        c.noise(NoiseChannel::XError(0.5), &[0]); // s1
        c.cx(0, 1); // copy the fault onto qubit 1
        c.measure(0);
        c.feedback(PauliKind::X, -1, 1);
        c.measure(1);
        let r = initialize::<SparsePhases>(&c);
        assert_eq!(r.measurements[0].to_string(), "s1");
        assert!(r.measurements[1].is_zero());
    }

    #[test]
    fn depolarize1_contributes_x_and_z_symbols() {
        let mut c = Circuit::new(1);
        c.h(0); // sensitize to Z faults
        c.noise(NoiseChannel::Depolarize1(0.1), &[0]); // s1 (X), s2 (Z)
        c.h(0);
        c.measure(0);
        let r = initialize::<SparsePhases>(&c);
        // In the X basis only the Z component flips the outcome.
        assert_eq!(r.measurements[0].to_string(), "s2");
    }

    #[test]
    fn z_error_invisible_in_z_basis() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::ZError(0.9), &[0]);
        c.measure(0);
        let r = initialize::<SparsePhases>(&c);
        assert!(r.measurements[0].is_zero());
    }

    #[test]
    fn y_error_flips_z_measurement() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::YError(0.5), &[0]);
        c.measure(0);
        let r = initialize::<SparsePhases>(&c);
        assert_eq!(r.measurements[0].to_string(), "s1");
    }

    #[test]
    fn mx_after_h_is_deterministic() {
        // H|0⟩ = |+⟩: MX is deterministic 0, and an X error is invisible
        // while a Z error flips it — the X-basis dual of the Z-basis laws.
        let mut c = Circuit::new(1);
        c.h(0);
        c.noise(NoiseChannel::XError(0.5), &[0]); // s1: invisible to MX
        c.noise(NoiseChannel::ZError(0.5), &[0]); // s2: flips MX
        c.measure_in(PauliKind::X, 0);
        let r = initialize::<SparsePhases>(&c);
        assert_eq!(r.measurements[0].to_string(), "s2");
        assert_eq!(r.table.num_coins(), 0);
    }

    #[test]
    fn rx_reset_discards_z_faults() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::ZError(0.5), &[0]);
        c.reset_in(PauliKind::X, 0);
        c.measure_in(PauliKind::X, 0);
        let r = initialize::<SparsePhases>(&c);
        assert!(r.measurements[0].is_zero(), "RX must clear phase faults");
    }

    #[test]
    fn mpp_on_bell_pair_is_deterministic() {
        // Bell state: X⊗X and Z⊗Z are +1 stabilizers, Y⊗Y is −1; none of
        // the products consumes a coin, and repeated MPPs agree.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.measure_pauli_products(&[
            &[(PauliKind::X, 0), (PauliKind::X, 1)],
            &[(PauliKind::Z, 0), (PauliKind::Z, 1)],
            &[(PauliKind::Y, 0), (PauliKind::Y, 1)],
        ]);
        let r = initialize::<SparsePhases>(&c);
        assert!(r.measurements[0].is_zero());
        assert!(r.measurements[1].is_zero());
        assert_eq!(r.measurements[2].to_string(), "1"); // YY = −1 → outcome 1
        assert_eq!(r.table.num_coins(), 0);
    }

    #[test]
    fn mpp_measurement_is_projective_not_destructive() {
        // Measuring X⊗X on |00⟩ is random (one coin); measuring it again
        // reuses the same coin, and Z⊗Z stays deterministic throughout.
        let mut c = Circuit::new(2);
        c.measure_pauli_product(&[(PauliKind::X, 0), (PauliKind::X, 1)]);
        c.measure_pauli_product(&[(PauliKind::X, 0), (PauliKind::X, 1)]);
        c.measure_pauli_product(&[(PauliKind::Z, 0), (PauliKind::Z, 1)]);
        let r = initialize::<SparsePhases>(&c);
        assert_eq!(r.measurements[0], r.measurements[1]);
        assert_eq!(r.table.num_coins(), 1);
        assert!(r.measurements[2].is_zero());
    }

    #[test]
    fn correlated_error_shares_one_symbol_across_the_product() {
        // E(p) X0 X1: both qubits flip together, so m0 ⊕ m1 cancels the
        // shared symbol while each outcome alone carries it.
        let mut c = Circuit::new(2);
        c.correlated_error(0.5, &[(PauliKind::X, 0), (PauliKind::X, 1)]);
        c.measure_all();
        let r = initialize::<SparsePhases>(&c);
        assert_eq!(r.measurements[0].to_string(), "s1");
        assert_eq!(r.measurements[1].to_string(), "s1");
        assert_eq!(r.table.num_symbols(), 1);
    }

    #[test]
    fn teleportation_verification_is_symbolically_zero() {
        let c = symphase_circuit::generators::teleportation();
        let r = initialize::<SparsePhases>(&c);
        assert!(
            r.measurements[2].is_zero(),
            "teleportation check must be 0, got {}",
            r.measurements[2]
        );
    }
}
