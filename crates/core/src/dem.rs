//! Detector error models: the fault → symptom map, extracted symbolically.
//!
//! Under phase symbolization every detector is an XOR expression over fault
//! symbols (coins cancel by construction), so the *detector error model* —
//! which physical error triggers which detectors and logical observables,
//! the input every QEC decoder needs — can be read off the sampler without
//! any Monte Carlo: enumerate each noise site's non-identity outcomes,
//! XOR the symptom sets of the symbols involved, and merge equal symptoms.
//!
//! This mirrors Stim's `.dem` format (`error(p) D0 D2 L0`) and is an
//! application of the paper's observation that the symbolic expressions
//! "clearly show how the faults in the circuit affect the measurement
//! outcomes" (§1).

use std::collections::HashMap;
use std::fmt;

use symphase_bitmat::SparseRowMatrix;

use crate::sampler::SymPhaseSampler;
use crate::symbol::{SymbolGroup, SymbolId};

/// One error mechanism: with `probability`, flip the listed detectors and
/// logical observables.
#[derive(Clone, Debug, PartialEq)]
pub struct DemError {
    /// Total probability of this symptom (independent contributions are
    /// XOR-combined: `p ← p₁(1−p₂) + p₂(1−p₁)`).
    pub probability: f64,
    /// Sorted detector indices flipped by the error.
    pub detectors: Vec<u32>,
    /// Sorted observable indices flipped by the error.
    pub observables: Vec<u32>,
}

impl fmt::Display for DemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error({})", self.probability)?;
        for d in &self.detectors {
            write!(f, " D{d}")?;
        }
        for o in &self.observables {
            write!(f, " L{o}")?;
        }
        Ok(())
    }
}

/// The collection of error mechanisms of a circuit.
///
/// # Example
///
/// ```
/// use symphase_circuit::generators::{repetition_code_memory, RepetitionCodeConfig};
/// use symphase_core::SymPhaseSampler;
///
/// let c = repetition_code_memory(&RepetitionCodeConfig {
///     distance: 3,
///     rounds: 1,
///     data_error: 0.01,
///     measure_error: 0.0,
/// });
/// let dem = SymPhaseSampler::new(&c).detector_error_model();
/// // Every data-qubit X error triggers one or two detectors.
/// assert_eq!(dem.errors().len(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DetectorErrorModel {
    errors: Vec<DemError>,
}

impl DetectorErrorModel {
    /// The error mechanisms, sorted by symptom.
    pub fn errors(&self) -> &[DemError] {
        &self.errors
    }

    /// Number of mechanisms.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// `true` when the circuit has no detectable error mechanism.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }
}

impl fmt::Display for DetectorErrorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.errors {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Symptom accumulator: symmetric-difference lists of detector/observable
/// indices.
fn xor_into(acc: &mut Vec<u32>, items: &[u32]) {
    for &i in items {
        match acc.binary_search(&i) {
            Ok(pos) => {
                acc.remove(pos);
            }
            Err(pos) => acc.insert(pos, i),
        }
    }
}

/// Builds the per-symbol symptom index for a sparse row matrix: column ->
/// list of rows containing it.
fn columns(rows: &SparseRowMatrix, len: usize) -> Vec<Vec<u32>> {
    let mut cols = vec![Vec::new(); len];
    for (r, row) in rows.iter().enumerate() {
        for &c in row.indices() {
            if c != 0 {
                cols[c as usize].push(r as u32);
            }
        }
    }
    cols
}

impl SymPhaseSampler {
    /// Extracts the detector error model of the circuit this sampler was
    /// built from.
    ///
    /// Outcomes of one noise site that trigger no detector and no
    /// observable are dropped; distinct sites producing the same symptom
    /// are merged with XOR-combined probabilities.
    pub fn detector_error_model(&self) -> DetectorErrorModel {
        let len = self.symbol_table().assignment_len();
        let det_cols = columns(self.detector_rows(), len);
        let obs_cols = columns(self.observable_rows(), len);

        let mut merged: HashMap<(Vec<u32>, Vec<u32>), f64> = HashMap::new();
        let mut add = |symbols: &[SymbolId], probability: f64| {
            if probability <= 0.0 {
                return;
            }
            let mut dets = Vec::new();
            let mut obs = Vec::new();
            for &s in symbols {
                xor_into(&mut dets, &det_cols[s as usize]);
                xor_into(&mut obs, &obs_cols[s as usize]);
            }
            if dets.is_empty() && obs.is_empty() {
                return;
            }
            let p = merged.entry((dets, obs)).or_insert(0.0);
            *p = *p * (1.0 - probability) + probability * (1.0 - *p);
        };

        // Probability that the current correlated chain has not fired yet
        // (chain elements are contiguous in allocation order).
        let mut chain_none = 1.0f64;
        for group in self.symbol_table().groups() {
            match *group {
                SymbolGroup::Coin { .. } => {}
                SymbolGroup::Bernoulli { id, p } => add(&[id], p),
                SymbolGroup::Depolarize1 { x_id, z_id, p } => {
                    add(&[x_id], p / 3.0);
                    add(&[x_id, z_id], p / 3.0);
                    add(&[z_id], p / 3.0);
                }
                SymbolGroup::Depolarize2 { ids, p } => {
                    for k in 1u32..16 {
                        let subset: Vec<SymbolId> = ids
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| k & (1 << j) != 0)
                            .map(|(_, &id)| id)
                            .collect();
                        add(&subset, p / 15.0);
                    }
                }
                SymbolGroup::PauliChannel1 {
                    x_id,
                    z_id,
                    px,
                    py,
                    pz,
                } => {
                    add(&[x_id], px);
                    add(&[x_id, z_id], py);
                    add(&[z_id], pz);
                }
                SymbolGroup::PauliChannel2 { ids, probs } => {
                    for (m, &p) in probs.iter().enumerate() {
                        let bits = symphase_circuit::pauli_channel_2_bits(m + 1);
                        let subset: Vec<SymbolId> = ids
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| bits[j])
                            .map(|(_, &id)| id)
                            .collect();
                        add(&subset, p);
                    }
                }
                SymbolGroup::Correlated { id, p, else_branch } => {
                    // Marginal probability: conditional `p` scaled by the
                    // chain not having fired yet.
                    let marginal = if else_branch { chain_none * p } else { p };
                    if else_branch {
                        chain_none *= 1.0 - p;
                    } else {
                        chain_none = 1.0 - p;
                    }
                    add(&[id], marginal);
                }
            }
        }

        let mut errors: Vec<DemError> = merged
            .into_iter()
            .map(|((detectors, observables), probability)| DemError {
                probability,
                detectors,
                observables,
            })
            .collect();
        errors.sort_by(|a, b| {
            a.detectors
                .cmp(&b.detectors)
                .then(a.observables.cmp(&b.observables))
        });
        DetectorErrorModel { errors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphase_circuit::generators::{repetition_code_memory, RepetitionCodeConfig};
    use symphase_circuit::{Circuit, NoiseChannel};

    #[test]
    fn repetition_code_matching_graph() {
        // Distance-4, one round, data errors only: data qubit i (of 4)
        // flips the final detectors it touches — end qubits touch one
        // detector, middle qubits two; the first qubit also flips the
        // logical observable.
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 4,
            rounds: 1,
            data_error: 0.01,
            measure_error: 0.0,
        });
        let dem = SymPhaseSampler::new(&c).detector_error_model();
        assert_eq!(dem.len(), 4);
        let weights: Vec<usize> = dem.errors().iter().map(|e| e.detectors.len()).collect();
        let mut sorted = weights.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 1, 2, 2], "boundary/bulk structure");
        // Exactly one mechanism flips the observable (the data qubit the
        // observable reads).
        let logical: Vec<_> = dem
            .errors()
            .iter()
            .filter(|e| !e.observables.is_empty())
            .collect();
        assert_eq!(logical.len(), 1);
        assert!((dem.errors()[0].probability - 0.01).abs() < 1e-12);
    }

    #[test]
    fn merged_probabilities_xor_combine() {
        // Two X errors on the same qubit produce one mechanism with
        // p = p1(1-p2) + p2(1-p1).
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::XError(0.1), &[0]);
        c.noise(NoiseChannel::XError(0.2), &[0]);
        c.measure(0);
        c.detector(&[-1]);
        let dem = SymPhaseSampler::new(&c).detector_error_model();
        assert_eq!(dem.len(), 1);
        let expect = 0.1 * 0.8 + 0.2 * 0.9;
        assert!((dem.errors()[0].probability - expect).abs() < 1e-12);
    }

    #[test]
    fn undetectable_faults_dropped() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::ZError(0.3), &[0]); // invisible in Z basis
        c.measure(0);
        c.detector(&[-1]);
        let dem = SymPhaseSampler::new(&c).detector_error_model();
        assert!(dem.is_empty());
    }

    #[test]
    fn depolarize_splits_into_mechanisms() {
        // DEPOLARIZE1 before H: X and Y flip the (pre-H) Z-detector... use
        // two measurements to distinguish X-like and Z-like symptoms.
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.noise(NoiseChannel::Depolarize1(0.3), &[0]);
        c.cx(0, 1);
        c.measure(0); // flips for X, Y
        c.h(0);
        c.measure(1); // flips for X, Y (copied)
        c.detector(&[-2]);
        c.detector(&[-1]);
        let dem = SymPhaseSampler::new(&c).detector_error_model();
        // X and Y both flip D0 and D1; Z is invisible → one merged
        // mechanism at p = 2·(p/3) XOR-combined.
        assert_eq!(dem.len(), 1);
        let p3 = 0.1;
        let expect = p3 * (1.0 - p3) + p3 * (1.0 - p3);
        assert!((dem.errors()[0].probability - expect).abs() < 1e-12);
        assert_eq!(dem.errors()[0].detectors, vec![0, 1]);
    }

    #[test]
    fn display_format() {
        let dem = DetectorErrorModel {
            errors: vec![DemError {
                probability: 0.125,
                detectors: vec![0, 2],
                observables: vec![1],
            }],
        };
        assert_eq!(dem.to_string(), "error(0.125) D0 D2 L1\n");
    }
}
