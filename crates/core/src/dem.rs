//! Detector error models: the fault → symptom map, extracted symbolically.
//!
//! Under phase symbolization every detector is an XOR expression over fault
//! symbols (coins cancel by construction), so the *detector error model* —
//! which physical error triggers which detectors and logical observables,
//! the input every QEC decoder needs — can be read off the sampler without
//! any Monte Carlo: enumerate each noise site's non-identity outcomes,
//! XOR the symptom sets of the symbols involved, and merge equal symptoms.
//!
//! This mirrors Stim's `.dem` format (`error(p) D0 D2 L0`) and is an
//! application of the paper's observation that the symbolic expressions
//! "clearly show how the faults in the circuit affect the measurement
//! outcomes" (§1).
//!
//! # Mechanism ordering
//!
//! Extracted models are **canonically ordered**: mechanisms are sorted by
//! their detector list, then by their observable list (lexicographically),
//! and equal symptoms are merged before sorting. Contributions to a merged
//! mechanism accumulate in symbol-allocation order, so the printed text of
//! two extractions of the same circuit is byte-identical — `symphase dem`
//! output is diffable across runs. Parsed models ([`DetectorErrorModel::parse`])
//! keep file order and are *not* re-merged, so external `.dem` files can be
//! analyzed as written.

use std::collections::HashMap;
use std::fmt;

use symphase_bitmat::SparseRowMatrix;

use crate::sampler::SymPhaseSampler;
use crate::symbol::{SymbolGroup, SymbolId};

/// One error mechanism: with `probability`, flip the listed detectors and
/// logical observables.
#[derive(Clone, Debug, PartialEq)]
pub struct DemError {
    /// Total probability of this symptom (independent contributions are
    /// XOR-combined: `p ← p₁(1−p₂) + p₂(1−p₁)`).
    pub probability: f64,
    /// Sorted detector indices flipped by the error.
    pub detectors: Vec<u32>,
    /// Sorted observable indices flipped by the error.
    pub observables: Vec<u32>,
    /// One concrete realization of the mechanism: the fault symbols of the
    /// first noise-site outcome that produced this symptom, sorted. Setting
    /// exactly these fault bits in an assignment reproduces the symptom —
    /// this is what lets `symphase analyze` discharge its distance claims
    /// through fault injection. Empty for parsed models (text carries no
    /// symbol identities) and not printed by `Display`.
    pub witness: Vec<SymbolId>,
}

impl fmt::Display for DemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error({})", self.probability)?;
        for d in &self.detectors {
            write!(f, " D{d}")?;
        }
        for o in &self.observables {
            write!(f, " L{o}")?;
        }
        Ok(())
    }
}

/// The collection of error mechanisms of a circuit.
///
/// # Example
///
/// ```
/// use symphase_circuit::generators::{repetition_code_memory, RepetitionCodeConfig};
/// use symphase_core::SymPhaseSampler;
///
/// let c = repetition_code_memory(&RepetitionCodeConfig {
///     distance: 3,
///     rounds: 1,
///     data_error: 0.01,
///     measure_error: 0.0,
/// });
/// let dem = SymPhaseSampler::new(&c).detector_error_model();
/// // Every data-qubit X error triggers one or two detectors.
/// assert_eq!(dem.errors().len(), 3);
/// assert_eq!(dem.num_detectors(), 4);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DetectorErrorModel {
    errors: Vec<DemError>,
    num_detectors: usize,
    num_observables: usize,
    /// Per-detector coordinates (empty vec = no coordinates known).
    detector_coords: Vec<Vec<f64>>,
}

impl DetectorErrorModel {
    /// Builds a model from parts, in canonical order (sorted by detectors,
    /// then observables). Detector/observable counts are raised to cover
    /// the highest index mentioned by any mechanism.
    pub fn from_parts(
        mut errors: Vec<DemError>,
        num_detectors: usize,
        num_observables: usize,
    ) -> Self {
        errors.sort_by(|a, b| {
            a.detectors
                .cmp(&b.detectors)
                .then(a.observables.cmp(&b.observables))
        });
        let mut dem = DetectorErrorModel {
            errors,
            num_detectors,
            num_observables,
            detector_coords: Vec::new(),
        };
        dem.cover_indices();
        dem
    }

    fn cover_indices(&mut self) {
        for e in &self.errors {
            if let Some(&d) = e.detectors.last() {
                self.num_detectors = self.num_detectors.max(d as usize + 1);
            }
            if let Some(&o) = e.observables.last() {
                self.num_observables = self.num_observables.max(o as usize + 1);
            }
        }
    }

    /// The error mechanisms, sorted by symptom.
    pub fn errors(&self) -> &[DemError] {
        &self.errors
    }

    /// Number of mechanisms.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// `true` when the circuit has no detectable error mechanism.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Number of detectors in the originating circuit (or covering the
    /// highest `D` index for parsed models).
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of observables in the originating circuit (or covering the
    /// highest `L` index for parsed models).
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// Per-detector coordinates; an empty inner vec means "no coordinates".
    /// May be shorter than [`Self::num_detectors`].
    pub fn detector_coords(&self) -> &[Vec<f64>] {
        &self.detector_coords
    }

    /// Attaches per-detector coordinates (index = detector), as produced by
    /// `Circuit::detector_coordinates`. Printed as `detector(x, y, t) Dk`
    /// annotation lines ahead of the mechanisms.
    pub fn with_detector_coords(mut self, coords: Vec<Vec<f64>>) -> Self {
        self.num_detectors = self.num_detectors.max(coords.len());
        self.detector_coords = coords;
        self
    }

    /// Parses the text form emitted by `Display`: `error(p) D.. L..`
    /// mechanism lines and optional `detector(x, y, t) Dk` coordinate
    /// annotations. `#` starts a comment; blank lines are skipped.
    ///
    /// Parsed models keep the file's mechanism order and are **not**
    /// merged: duplicate symptoms stay distinct (the analyzer reports them
    /// as SP014 `dominated-mechanism`). Witnesses are left empty — text
    /// carries no fault-symbol identities.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut errors = Vec::new();
        let mut detector_coords: Vec<Vec<f64>> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let ln = idx + 1;
            if let Some(rest) = line.strip_prefix("error") {
                let (p, tail) = parse_paren_args(rest, ln)?;
                if p.len() != 1 {
                    return Err(format!("line {ln}: error() takes exactly one probability"));
                }
                let probability = p[0];
                if !(0.0..=1.0).contains(&probability) {
                    return Err(format!(
                        "line {ln}: probability {probability} not in [0, 1]"
                    ));
                }
                let mut detectors = Vec::new();
                let mut observables = Vec::new();
                for tok in tail.split_whitespace() {
                    if let Some(d) = tok.strip_prefix('D') {
                        let d: u32 = d
                            .parse()
                            .map_err(|_| format!("line {ln}: bad detector target `{tok}`"))?;
                        xor_into(&mut detectors, &[d]);
                    } else if let Some(o) = tok.strip_prefix('L') {
                        let o: u32 = o
                            .parse()
                            .map_err(|_| format!("line {ln}: bad observable target `{tok}`"))?;
                        xor_into(&mut observables, &[o]);
                    } else {
                        return Err(format!("line {ln}: unknown target `{tok}`"));
                    }
                }
                errors.push(DemError {
                    probability,
                    detectors,
                    observables,
                    witness: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix("detector") {
                let (coords, tail) = parse_paren_args(rest, ln)?;
                let mut targets = tail.split_whitespace();
                let tok = targets
                    .next()
                    .ok_or_else(|| format!("line {ln}: detector annotation needs a D target"))?;
                if targets.next().is_some() {
                    return Err(format!(
                        "line {ln}: detector annotation takes exactly one D target"
                    ));
                }
                let d: usize = tok
                    .strip_prefix('D')
                    .and_then(|d| d.parse().ok())
                    .ok_or_else(|| format!("line {ln}: bad detector target `{tok}`"))?;
                if d >= detector_coords.len() {
                    detector_coords.resize(d + 1, Vec::new());
                }
                detector_coords[d] = coords;
            } else {
                return Err(format!(
                    "line {ln}: expected `error(...)` or `detector(...)`, got `{line}`"
                ));
            }
        }
        let mut dem = DetectorErrorModel {
            errors,
            num_detectors: detector_coords.len(),
            num_observables: 0,
            detector_coords,
        };
        dem.cover_indices();
        Ok(dem)
    }
}

/// Splits `"(a, b, c) tail"` into the parsed f64 arguments and the tail.
fn parse_paren_args(rest: &str, ln: usize) -> Result<(Vec<f64>, &str), String> {
    let rest = rest.trim_start();
    let inner = rest
        .strip_prefix('(')
        .ok_or_else(|| format!("line {ln}: expected `(`"))?;
    let close = inner
        .find(')')
        .ok_or_else(|| format!("line {ln}: missing `)`"))?;
    let args = &inner[..close];
    let mut parsed = Vec::new();
    for a in args.split(',') {
        let a = a.trim();
        if a.is_empty() {
            continue;
        }
        parsed.push(
            a.parse::<f64>()
                .map_err(|_| format!("line {ln}: bad number `{a}`"))?,
        );
    }
    Ok((parsed, &inner[close + 1..]))
}

impl fmt::Display for DetectorErrorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (d, coords) in self.detector_coords.iter().enumerate() {
            if coords.is_empty() {
                continue;
            }
            write!(f, "detector(")?;
            for (i, c) in coords.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
            writeln!(f, ") D{d}")?;
        }
        for e in &self.errors {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Symptom accumulator: symmetric-difference lists of detector/observable
/// indices.
fn xor_into(acc: &mut Vec<u32>, items: &[u32]) {
    for &i in items {
        match acc.binary_search(&i) {
            Ok(pos) => {
                acc.remove(pos);
            }
            Err(pos) => acc.insert(pos, i),
        }
    }
}

/// Builds the per-symbol symptom index for a sparse row matrix: column ->
/// list of rows containing it.
fn columns(rows: &SparseRowMatrix, len: usize) -> Vec<Vec<u32>> {
    let mut cols = vec![Vec::new(); len];
    for (r, row) in rows.iter().enumerate() {
        for &c in row.indices() {
            if c != 0 {
                cols[c as usize].push(r as u32);
            }
        }
    }
    cols
}

impl SymPhaseSampler {
    /// Extracts the detector error model of the circuit this sampler was
    /// built from.
    ///
    /// Outcomes of one noise site that trigger no detector and no
    /// observable are dropped; distinct sites producing the same symptom
    /// are merged with XOR-combined probabilities. Each mechanism records
    /// the fault symbols of its first contribution as a [`DemError::witness`].
    pub fn detector_error_model(&self) -> DetectorErrorModel {
        let len = self.symbol_table().assignment_len();
        let det_cols = columns(self.detector_rows(), len);
        let obs_cols = columns(self.observable_rows(), len);

        // Symptom (detectors, observables) → (probability, witness).
        type Merged = HashMap<(Vec<u32>, Vec<u32>), (f64, Vec<SymbolId>)>;
        let mut merged: Merged = HashMap::new();
        let mut add = |symbols: &[SymbolId], probability: f64| {
            if probability <= 0.0 {
                return;
            }
            let mut dets = Vec::new();
            let mut obs = Vec::new();
            for &s in symbols {
                xor_into(&mut dets, &det_cols[s as usize]);
                xor_into(&mut obs, &obs_cols[s as usize]);
            }
            if dets.is_empty() && obs.is_empty() {
                return;
            }
            let entry = merged.entry((dets, obs)).or_insert_with(|| {
                let mut witness = symbols.to_vec();
                witness.sort_unstable();
                (0.0, witness)
            });
            entry.0 = entry.0 * (1.0 - probability) + probability * (1.0 - entry.0);
        };

        // Probability that the current correlated chain has not fired yet
        // (chain elements are contiguous in allocation order).
        let mut chain_none = 1.0f64;
        for group in self.symbol_table().groups() {
            match *group {
                SymbolGroup::Coin { .. } => {}
                SymbolGroup::Bernoulli { id, p } => add(&[id], p),
                SymbolGroup::Depolarize1 { x_id, z_id, p } => {
                    add(&[x_id], p / 3.0);
                    add(&[x_id, z_id], p / 3.0);
                    add(&[z_id], p / 3.0);
                }
                SymbolGroup::Depolarize2 { ids, p } => {
                    for k in 1u32..16 {
                        let subset: Vec<SymbolId> = ids
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| k & (1 << j) != 0)
                            .map(|(_, &id)| id)
                            .collect();
                        add(&subset, p / 15.0);
                    }
                }
                SymbolGroup::PauliChannel1 {
                    x_id,
                    z_id,
                    px,
                    py,
                    pz,
                } => {
                    add(&[x_id], px);
                    add(&[x_id, z_id], py);
                    add(&[z_id], pz);
                }
                SymbolGroup::PauliChannel2 { ids, probs } => {
                    for (m, &p) in probs.iter().enumerate() {
                        let bits = symphase_circuit::pauli_channel_2_bits(m + 1);
                        let subset: Vec<SymbolId> = ids
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| bits[j])
                            .map(|(_, &id)| id)
                            .collect();
                        add(&subset, p);
                    }
                }
                SymbolGroup::Correlated { id, p, else_branch } => {
                    // Marginal probability: conditional `p` scaled by the
                    // chain not having fired yet.
                    let marginal = if else_branch { chain_none * p } else { p };
                    if else_branch {
                        chain_none *= 1.0 - p;
                    } else {
                        chain_none = 1.0 - p;
                    }
                    add(&[id], marginal);
                }
            }
        }

        let errors: Vec<DemError> = merged
            .into_iter()
            .map(
                |((detectors, observables), (probability, witness))| DemError {
                    probability,
                    detectors,
                    observables,
                    witness,
                },
            )
            .collect();
        DetectorErrorModel::from_parts(
            errors,
            self.detector_rows().rows(),
            self.observable_rows().rows(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphase_circuit::generators::{repetition_code_memory, RepetitionCodeConfig};
    use symphase_circuit::{Circuit, NoiseChannel};

    #[test]
    fn repetition_code_matching_graph() {
        // Distance-4, one round, data errors only: data qubit i (of 4)
        // flips the final detectors it touches — end qubits touch one
        // detector, middle qubits two; the first qubit also flips the
        // logical observable.
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 4,
            rounds: 1,
            data_error: 0.01,
            measure_error: 0.0,
        });
        let dem = SymPhaseSampler::new(&c).detector_error_model();
        assert_eq!(dem.len(), 4);
        assert_eq!(dem.num_detectors(), c.num_detectors());
        assert_eq!(dem.num_observables(), 1);
        let weights: Vec<usize> = dem.errors().iter().map(|e| e.detectors.len()).collect();
        let mut sorted = weights.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 1, 2, 2], "boundary/bulk structure");
        // Exactly one mechanism flips the observable (the data qubit the
        // observable reads).
        let logical: Vec<_> = dem
            .errors()
            .iter()
            .filter(|e| !e.observables.is_empty())
            .collect();
        assert_eq!(logical.len(), 1);
        assert!((dem.errors()[0].probability - 0.01).abs() < 1e-12);
        // Every mechanism carries a concrete witness symbol.
        assert!(dem.errors().iter().all(|e| e.witness.len() == 1));
    }

    #[test]
    fn merged_probabilities_xor_combine() {
        // Two X errors on the same qubit produce one mechanism with
        // p = p1(1-p2) + p2(1-p1).
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::XError(0.1), &[0]);
        c.noise(NoiseChannel::XError(0.2), &[0]);
        c.measure(0);
        c.detector(&[-1]);
        let dem = SymPhaseSampler::new(&c).detector_error_model();
        assert_eq!(dem.len(), 1);
        let expect = 0.1 * 0.8 + 0.2 * 0.9;
        assert!((dem.errors()[0].probability - expect).abs() < 1e-12);
        // The witness is the *first* contribution's symbol set only.
        assert_eq!(dem.errors()[0].witness.len(), 1);
    }

    #[test]
    fn undetectable_faults_dropped() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::ZError(0.3), &[0]); // invisible in Z basis
        c.measure(0);
        c.detector(&[-1]);
        let dem = SymPhaseSampler::new(&c).detector_error_model();
        assert!(dem.is_empty());
        assert_eq!(dem.num_detectors(), 1);
    }

    #[test]
    fn depolarize_splits_into_mechanisms() {
        // DEPOLARIZE1 before H: X and Y flip the (pre-H) Z-detector... use
        // two measurements to distinguish X-like and Z-like symptoms.
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.noise(NoiseChannel::Depolarize1(0.3), &[0]);
        c.cx(0, 1);
        c.measure(0); // flips for X, Y
        c.h(0);
        c.measure(1); // flips for X, Y (copied)
        c.detector(&[-2]);
        c.detector(&[-1]);
        let dem = SymPhaseSampler::new(&c).detector_error_model();
        // X and Y both flip D0 and D1; Z is invisible → one merged
        // mechanism at p = 2·(p/3) XOR-combined.
        assert_eq!(dem.len(), 1);
        let p3 = 0.1;
        let expect = p3 * (1.0 - p3) + p3 * (1.0 - p3);
        assert!((dem.errors()[0].probability - expect).abs() < 1e-12);
        assert_eq!(dem.errors()[0].detectors, vec![0, 1]);
    }

    #[test]
    fn display_format() {
        let dem = DetectorErrorModel::from_parts(
            vec![DemError {
                probability: 0.125,
                detectors: vec![0, 2],
                observables: vec![1],
                witness: vec![4],
            }],
            3,
            2,
        );
        assert_eq!(dem.to_string(), "error(0.125) D0 D2 L1\n");
        let with_coords = dem.with_detector_coords(vec![vec![], vec![1.0, 2.5, 0.0]]);
        assert_eq!(
            with_coords.to_string(),
            "detector(1, 2.5, 0) D1\nerror(0.125) D0 D2 L1\n"
        );
    }

    #[test]
    fn parse_round_trips_display() {
        let text = "detector(0, 1) D0\ndetector(2, 1) D2\nerror(0.125) D0 D2 L1\nerror(0.25) D1\n";
        let dem = DetectorErrorModel::parse(text).unwrap();
        assert_eq!(dem.to_string(), text);
        assert_eq!(dem.num_detectors(), 3);
        assert_eq!(dem.num_observables(), 2);
        assert_eq!(dem.len(), 2);
        assert!(dem.errors().iter().all(|e| e.witness.is_empty()));
    }

    #[test]
    fn parse_skips_comments_and_keeps_duplicates() {
        let text = "# comment\n\nerror(0.1) D0 L0   # trailing\nerror(0.2) D0 L0\n";
        let dem = DetectorErrorModel::parse(text).unwrap();
        assert_eq!(dem.len(), 2, "parsed models are not merged");
        assert_eq!(dem.errors()[0].probability, 0.1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(DetectorErrorModel::parse("error(2) D0").is_err());
        assert!(DetectorErrorModel::parse("error(0.1) Q0").is_err());
        assert!(DetectorErrorModel::parse("oops").is_err());
        assert!(DetectorErrorModel::parse("detector(1) D0 D1").is_err());
        assert!(DetectorErrorModel::parse("error 0.1 D0").is_err());
    }

    #[test]
    fn parse_xor_combines_repeated_targets() {
        // `D0 D0` cancels, like repeated lookbacks in a DETECTOR.
        let dem = DetectorErrorModel::parse("error(0.1) D0 D0 D1 L0\n").unwrap();
        assert_eq!(dem.errors()[0].detectors, vec![1]);
    }
}
