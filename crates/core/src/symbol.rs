//! Bit-symbols and their sampling distributions (paper §3.1).
//!
//! Symbols come from two sources: *coins* introduced by random measurement
//! outcomes (sampled fair), and *fault symbols* introduced by noise channels
//! (sampled with the channel's joint distribution — e.g. `DEPOLARIZE1`
//! introduces a pair `(s_x, s_z)` valued `00, 10, 11, 01` with probabilities
//! `1−p, p/3, p/3, p/3`).

use rand::Rng;

use symphase_bitmat::bernoulli::fill_bernoulli;
use symphase_bitmat::BitMatrix;

/// Identifier of a bit-symbol: its column index in phase vectors.
/// Index 0 is reserved for the constant `s₀ = 1` (paper §3.2.1), so real
/// symbols start at 1.
pub type SymbolId = u32;

/// A group of symbols sampled jointly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SymbolGroup {
    /// A fair coin from a random measurement outcome.
    Coin {
        /// The symbol.
        id: SymbolId,
    },
    /// A single Bernoulli symbol from an `X/Y/Z_ERROR(p)` fault.
    Bernoulli {
        /// The symbol.
        id: SymbolId,
        /// Fault probability.
        p: f64,
    },
    /// `DEPOLARIZE1(p)`: `X^{s_x} Z^{s_z}` with `(s_x, s_z)` jointly
    /// distributed over `{00: 1−p, 10: p/3, 11: p/3, 01: p/3}`.
    Depolarize1 {
        /// Symbol of the X component.
        x_id: SymbolId,
        /// Symbol of the Z component.
        z_id: SymbolId,
        /// Total fault probability.
        p: f64,
    },
    /// `DEPOLARIZE2(p)`: four symbols `(s_{xa}, s_{za}, s_{xb}, s_{zb})`
    /// uniformly over the 15 non-identity two-qubit Paulis with total
    /// probability `p`.
    Depolarize2 {
        /// Symbols in order `x_a, z_a, x_b, z_b`.
        ids: [SymbolId; 4],
        /// Total fault probability.
        p: f64,
    },
    /// `PAULI_CHANNEL_1(px, py, pz)`: `X^{s_x} Z^{s_z}` with
    /// `(1,0)`, `(1,1)`, `(0,1)` having probabilities `px, py, pz`.
    PauliChannel1 {
        /// Symbol of the X component.
        x_id: SymbolId,
        /// Symbol of the Z component.
        z_id: SymbolId,
        /// X probability.
        px: f64,
        /// Y probability.
        py: f64,
        /// Z probability.
        pz: f64,
    },
    /// `PAULI_CHANNEL_2(p₁…p₁₅)`: four symbols `(s_{xa}, s_{za}, s_{xb},
    /// s_{zb})` over the 15 non-identity two-qubit Paulis with the listed
    /// probabilities (Stim argument order, see
    /// [`symphase_circuit::pauli_channel_2_bits`]).
    PauliChannel2 {
        /// Symbols in order `x_a, z_a, x_b, z_b`.
        ids: [SymbolId; 4],
        /// Outcome probabilities, indexed by outcome − 1.
        probs: [f64; 15],
    },
    /// One element of a `CORRELATED_ERROR` / `ELSE_CORRELATED_ERROR`
    /// chain: a single symbol for the whole Pauli product. Elements of
    /// one chain are sampled jointly — an `else_branch` element fires
    /// with probability `p` only when no earlier element of its
    /// (contiguous, allocation-order) chain fired, so at most one symbol
    /// per chain is 1 in any shot.
    Correlated {
        /// The product's symbol.
        id: SymbolId,
        /// Fire probability (conditional for `else_branch` elements).
        p: f64,
        /// `true` for `ELSE_CORRELATED_ERROR` (continues the previous
        /// group's chain).
        else_branch: bool,
    },
}

/// Registry of all symbols introduced during Initialization, with enough
/// information to sample assignment vectors `b` (paper §3.2.3).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SymbolTable {
    groups: Vec<SymbolGroup>,
    next_id: u32,
}

impl SymbolTable {
    /// Creates an empty table (only the constant `s₀` exists).
    pub fn new() -> Self {
        Self {
            groups: Vec::new(),
            next_id: 1,
        }
    }

    /// Number of symbols allocated (excluding the constant `s₀`).
    pub fn num_symbols(&self) -> usize {
        (self.next_id - 1) as usize
    }

    /// Number of columns of an assignment vector (symbols + constant).
    pub fn assignment_len(&self) -> usize {
        self.next_id as usize
    }

    /// The symbol groups in allocation order.
    pub fn groups(&self) -> &[SymbolGroup] {
        &self.groups
    }

    /// Number of coin symbols (from random measurements).
    pub fn num_coins(&self) -> usize {
        self.groups
            .iter()
            .filter(|g| matches!(g, SymbolGroup::Coin { .. }))
            .count()
    }

    fn alloc(&mut self) -> SymbolId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Allocates a fair-coin symbol for a random measurement outcome.
    pub fn fresh_coin(&mut self) -> SymbolId {
        let id = self.alloc();
        self.groups.push(SymbolGroup::Coin { id });
        id
    }

    /// Allocates a Bernoulli fault symbol.
    pub fn fresh_bernoulli(&mut self, p: f64) -> SymbolId {
        let id = self.alloc();
        self.groups.push(SymbolGroup::Bernoulli { id, p });
        id
    }

    /// Allocates the `(s_x, s_z)` pair of a `DEPOLARIZE1` site.
    pub fn fresh_depolarize1(&mut self, p: f64) -> (SymbolId, SymbolId) {
        let x_id = self.alloc();
        let z_id = self.alloc();
        self.groups.push(SymbolGroup::Depolarize1 { x_id, z_id, p });
        (x_id, z_id)
    }

    /// Allocates the four symbols of a `DEPOLARIZE2` site, in order
    /// `x_a, z_a, x_b, z_b`.
    pub fn fresh_depolarize2(&mut self, p: f64) -> [SymbolId; 4] {
        let ids = [self.alloc(), self.alloc(), self.alloc(), self.alloc()];
        self.groups.push(SymbolGroup::Depolarize2 { ids, p });
        ids
    }

    /// Allocates the `(s_x, s_z)` pair of a `PAULI_CHANNEL_1` site.
    pub fn fresh_pauli_channel1(&mut self, px: f64, py: f64, pz: f64) -> (SymbolId, SymbolId) {
        let x_id = self.alloc();
        let z_id = self.alloc();
        self.groups.push(SymbolGroup::PauliChannel1 {
            x_id,
            z_id,
            px,
            py,
            pz,
        });
        (x_id, z_id)
    }

    /// Allocates the four symbols of a `PAULI_CHANNEL_2` site, in order
    /// `x_a, z_a, x_b, z_b`.
    pub fn fresh_pauli_channel2(&mut self, probs: [f64; 15]) -> [SymbolId; 4] {
        let ids = [self.alloc(), self.alloc(), self.alloc(), self.alloc()];
        self.groups.push(SymbolGroup::PauliChannel2 { ids, probs });
        ids
    }

    /// Allocates the symbol of one correlated-error chain element.
    pub fn fresh_correlated(&mut self, p: f64, else_branch: bool) -> SymbolId {
        let id = self.alloc();
        self.groups
            .push(SymbolGroup::Correlated { id, p, else_branch });
        id
    }

    /// Samples the assignment matrix `B ∈ F₂^{(n_s+1) × shots}`: row 0 is
    /// the constant 1, row `k` the sampled values of symbol `k` across
    /// shots (64 shots per word). This is the noise-model-dependent part of
    /// the paper's Sampling procedure.
    pub fn sample_assignments(&self, shots: usize, rng: &mut impl Rng) -> BitMatrix {
        let mut b = BitMatrix::zeros(self.assignment_len(), shots);
        self.sample_assignments_into(&mut b, rng);
        b
    }

    /// In-place variant of [`SymbolTable::sample_assignments`]: refills a
    /// previously shaped `(assignment_len × shots)` matrix, so shot-batched
    /// sampling reuses one buffer instead of allocating per batch. The RNG
    /// stream consumed is identical to the allocating variant.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != assignment_len()`.
    pub fn sample_assignments_into(&self, b: &mut BitMatrix, rng: &mut impl Rng) {
        assert_eq!(b.rows(), self.assignment_len(), "assignment row mismatch");
        let shots = b.cols();
        b.words_mut().fill(0);
        // Row 0: the constant symbol s₀ = 1.
        {
            let stride = b.stride();
            let tail = symphase_bitmat::word::tail_mask(shots);
            let row0 = &mut b.words_mut()[..stride];
            row0.iter_mut().for_each(|w| *w = !0);
            if let Some(last) = row0.last_mut() {
                *last &= tail;
            }
        }
        let stride = b.stride();
        // Scratch fire-mask reused across all jointly-distributed groups.
        let mut fire = vec![0u64; stride];
        // Per-shot "this correlated chain already fired" mask; rewritten
        // by every chain-starting `Correlated` group.
        let mut chain = vec![0u64; stride];
        for group in &self.groups {
            match *group {
                SymbolGroup::Coin { id } => {
                    let row = row_mut(b, id, stride);
                    fill_bernoulli(row, shots, 0.5, rng);
                }
                SymbolGroup::Bernoulli { id, p } => {
                    let row = row_mut(b, id, stride);
                    fill_bernoulli(row, shots, p, rng);
                }
                SymbolGroup::Depolarize1 { x_id, z_id, p } => {
                    fill_bernoulli(&mut fire, shots, p, rng);
                    scatter_choice(
                        b,
                        stride,
                        &fire,
                        rng,
                        |k| match k {
                            0 => (Some(x_id), None),       // X
                            1 => (Some(x_id), Some(z_id)), // Y
                            _ => (None, Some(z_id)),       // Z
                        },
                        3,
                    );
                }
                SymbolGroup::Depolarize2 { ids, p } => {
                    fill_bernoulli(&mut fire, shots, p, rng);
                    for (w, &fire_word) in fire.iter().enumerate().take(stride) {
                        let mut fired = fire_word;
                        while fired != 0 {
                            let bit = fired.trailing_zeros() as usize;
                            fired &= fired - 1;
                            let k = rng.random_range(1..16u32);
                            for (j, &id) in ids.iter().enumerate() {
                                if k & (1 << j) != 0 {
                                    set_bit(b, id, stride, w, bit);
                                }
                            }
                        }
                    }
                }
                SymbolGroup::PauliChannel1 {
                    x_id,
                    z_id,
                    px,
                    py,
                    pz,
                } => {
                    let total = px + py + pz;
                    fill_bernoulli(&mut fire, shots, total, rng);
                    for (w, &fire_word) in fire.iter().enumerate().take(stride) {
                        let mut fired = fire_word;
                        while fired != 0 {
                            let bit = fired.trailing_zeros() as usize;
                            fired &= fired - 1;
                            let u: f64 = rng.random::<f64>() * total;
                            let (fx, fz) = if u < px {
                                (true, false)
                            } else if u < px + py {
                                (true, true)
                            } else {
                                (false, true)
                            };
                            if fx {
                                set_bit(b, x_id, stride, w, bit);
                            }
                            if fz {
                                set_bit(b, z_id, stride, w, bit);
                            }
                        }
                    }
                }
                SymbolGroup::PauliChannel2 { ids, probs } => {
                    let total: f64 = probs.iter().sum();
                    fill_bernoulli(&mut fire, shots, total.min(1.0), rng);
                    for (w, &fire_word) in fire.iter().enumerate().take(stride) {
                        let mut fired = fire_word;
                        while fired != 0 {
                            let bit = fired.trailing_zeros() as usize;
                            fired &= fired - 1;
                            let u: f64 = rng.random::<f64>() * total;
                            let m = symphase_circuit::pauli_channel_2_select(u, &probs);
                            let bits = symphase_circuit::pauli_channel_2_bits(m);
                            for (j, &id) in ids.iter().enumerate() {
                                if bits[j] {
                                    set_bit(b, id, stride, w, bit);
                                }
                            }
                        }
                    }
                }
                SymbolGroup::Correlated { id, p, else_branch } => {
                    // An independent Bernoulli(p) draw masked by "chain
                    // not fired yet" realizes the conditional probability
                    // exactly; the chain mask accumulates fired shots.
                    fill_bernoulli(&mut fire, shots, p, rng);
                    if else_branch {
                        for (f, c) in fire.iter_mut().zip(chain.iter_mut()) {
                            *f &= !*c;
                            *c |= *f;
                        }
                    } else {
                        chain.copy_from_slice(&fire);
                    }
                    row_mut(b, id, stride).copy_from_slice(&fire);
                }
            }
        }
    }
}

fn row_mut(b: &mut BitMatrix, id: SymbolId, stride: usize) -> &mut [u64] {
    let start = id as usize * stride;
    &mut b.words_mut()[start..start + stride]
}

#[inline]
fn set_bit(b: &mut BitMatrix, id: SymbolId, stride: usize, word: usize, bit: usize) {
    b.words_mut()[id as usize * stride + word] |= 1 << bit;
}

fn scatter_choice(
    b: &mut BitMatrix,
    stride: usize,
    fire: &[u64],
    rng: &mut impl Rng,
    choose: impl Fn(u32) -> (Option<SymbolId>, Option<SymbolId>),
    options: u32,
) {
    for (w, &word) in fire.iter().enumerate() {
        let mut fired = word;
        while fired != 0 {
            let bit = fired.trailing_zeros() as usize;
            fired &= fired - 1;
            let (a, c) = choose(rng.random_range(0..options));
            if let Some(id) = a {
                set_bit(b, id, stride, w, bit);
            }
            if let Some(id) = c {
                set_bit(b, id, stride, w, bit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ids_are_sequential_from_one() {
        let mut t = SymbolTable::new();
        assert_eq!(t.fresh_coin(), 1);
        assert_eq!(t.fresh_bernoulli(0.1), 2);
        assert_eq!(t.fresh_depolarize1(0.1), (3, 4));
        assert_eq!(t.fresh_depolarize2(0.1), [5, 6, 7, 8]);
        assert_eq!(t.num_symbols(), 8);
        assert_eq!(t.assignment_len(), 9);
        assert_eq!(t.num_coins(), 1);
    }

    #[test]
    fn constant_row_is_all_ones() {
        let mut t = SymbolTable::new();
        t.fresh_coin();
        let b = t.sample_assignments(130, &mut StdRng::seed_from_u64(1));
        for shot in 0..130 {
            assert!(b.get(0, shot));
        }
    }

    #[test]
    fn coin_density_is_half() {
        let mut t = SymbolTable::new();
        let id = t.fresh_coin();
        let shots = 100_000;
        let b = t.sample_assignments(shots, &mut StdRng::seed_from_u64(2));
        let ones: usize = (0..shots).filter(|&s| b.get(id as usize, s)).count();
        assert!((ones as f64 - shots as f64 / 2.0).abs() < 6.0 * (shots as f64 / 4.0).sqrt());
    }

    #[test]
    fn depolarize1_joint_distribution() {
        let mut t = SymbolTable::new();
        let p = 0.3;
        let (x, z) = t.fresh_depolarize1(p);
        let shots = 300_000;
        let b = t.sample_assignments(shots, &mut StdRng::seed_from_u64(3));
        let mut counts = [0usize; 4]; // I, X, Z, Y as (x,z) bit pairs
        for s in 0..shots {
            let xi = usize::from(b.get(x as usize, s));
            let zi = usize::from(b.get(z as usize, s));
            counts[xi + 2 * zi] += 1;
        }
        let expect = [
            (1.0 - p) * shots as f64, // I = (0,0)
            p / 3.0 * shots as f64,   // X = (1,0)
            p / 3.0 * shots as f64,   // Z = (0,1)
            p / 3.0 * shots as f64,   // Y = (1,1)
        ];
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect[i]).abs() < 6.0 * expect[i].sqrt() + 20.0,
                "outcome {i}: {c} vs {}",
                expect[i]
            );
        }
    }

    #[test]
    fn depolarize2_never_identity_when_fired() {
        let mut t = SymbolTable::new();
        let ids = t.fresh_depolarize2(1.0); // always fires
        let shots = 10_000;
        let b = t.sample_assignments(shots, &mut StdRng::seed_from_u64(4));
        for s in 0..shots {
            let any = ids.iter().any(|&id| b.get(id as usize, s));
            assert!(any, "fired DEPOLARIZE2 produced identity in shot {s}");
        }
    }

    #[test]
    fn pauli_channel1_marginals() {
        let mut t = SymbolTable::new();
        let (x, z) = t.fresh_pauli_channel1(0.1, 0.05, 0.2);
        let shots = 200_000;
        let b = t.sample_assignments(shots, &mut StdRng::seed_from_u64(5));
        let mut nx = 0usize;
        let mut ny = 0usize;
        let mut nz = 0usize;
        for s in 0..shots {
            match (b.get(x as usize, s), b.get(z as usize, s)) {
                (true, false) => nx += 1,
                (true, true) => ny += 1,
                (false, true) => nz += 1,
                (false, false) => {}
            }
        }
        let tol = |p: f64| 6.0 * (shots as f64 * p * (1.0 - p)).sqrt() + 20.0;
        assert!((nx as f64 - 0.1 * shots as f64).abs() < tol(0.1));
        assert!((ny as f64 - 0.05 * shots as f64).abs() < tol(0.05));
        assert!((nz as f64 - 0.2 * shots as f64).abs() < tol(0.2));
    }

    #[test]
    fn empty_table_has_constant_only() {
        let t = SymbolTable::new();
        let b = t.sample_assignments(64, &mut StdRng::seed_from_u64(6));
        assert_eq!(b.rows(), 1);
    }

    #[test]
    fn pauli_channel2_outcome_distribution() {
        let mut probs = [0.0f64; 15];
        probs[0] = 0.15; // IX → (xb)
        probs[3] = 0.2; // XI → (xa)
        probs[9] = 0.1; // YY → all four
        let mut t = SymbolTable::new();
        let ids = t.fresh_pauli_channel2(probs);
        let shots = 300_000;
        let b = t.sample_assignments(shots, &mut StdRng::seed_from_u64(7));
        let mut counts = std::collections::HashMap::new();
        for s in 0..shots {
            let key: Vec<bool> = ids.iter().map(|&id| b.get(id as usize, s)).collect();
            *counts.entry(key).or_insert(0usize) += 1;
        }
        let tol = |p: f64| 6.0 * (shots as f64 * p * (1.0 - p)).sqrt() + 20.0;
        let expect = [
            (vec![false, false, true, false], 0.15),
            (vec![true, false, false, false], 0.2),
            (vec![true, true, true, true], 0.1),
            (vec![false, false, false, false], 0.55),
        ];
        for (key, p) in expect {
            let c = *counts.get(&key).unwrap_or(&0) as f64;
            assert!(
                (c - p * shots as f64).abs() < tol(p),
                "outcome {key:?}: {c} vs {}",
                p * shots as f64
            );
        }
        // No other outcome ever fires.
        assert_eq!(counts.len(), 4, "unexpected outcomes: {counts:?}");
    }

    #[test]
    fn correlated_chain_fires_at_most_one_element() {
        let mut t = SymbolTable::new();
        let a = t.fresh_correlated(0.4, false);
        let b_id = t.fresh_correlated(0.5, true);
        let c_id = t.fresh_correlated(1.0, true);
        let shots = 200_000;
        let b = t.sample_assignments(shots, &mut StdRng::seed_from_u64(8));
        let mut counts = [0usize; 3];
        for s in 0..shots {
            let fired = [
                b.get(a as usize, s),
                b.get(b_id as usize, s),
                b.get(c_id as usize, s),
            ];
            assert!(
                fired.iter().filter(|&&f| f).count() <= 1,
                "chain fired twice in shot {s}"
            );
            for (i, &f) in fired.iter().enumerate() {
                counts[i] += usize::from(f);
            }
        }
        // The p=1 tail element guarantees exactly one element per shot.
        assert_eq!(counts.iter().sum::<usize>(), shots);
        // Marginals: 0.4, 0.6·0.5 = 0.3, 0.6·0.5·1 = 0.3.
        let tol = 6.0 * (shots as f64 * 0.25).sqrt() + 20.0;
        assert!((counts[0] as f64 - 0.4 * shots as f64).abs() < tol);
        assert!((counts[1] as f64 - 0.3 * shots as f64).abs() < tol);
        assert!((counts[2] as f64 - 0.3 * shots as f64).abs() < tol);
    }

    #[test]
    fn independent_chains_reset_state() {
        // A second E starts a fresh chain: its ELSE conditions on the new
        // chain only.
        let mut t = SymbolTable::new();
        let a = t.fresh_correlated(1.0, false); // always fires
        let b_id = t.fresh_correlated(1.0, false); // new chain, always fires
        let c_id = t.fresh_correlated(1.0, true); // blocked by b, not a
        let shots = 1_000;
        let b = t.sample_assignments(shots, &mut StdRng::seed_from_u64(9));
        for s in 0..shots {
            assert!(b.get(a as usize, s));
            assert!(b.get(b_id as usize, s));
            assert!(!b.get(c_id as usize, s));
        }
    }
}
