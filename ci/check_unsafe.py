#!/usr/bin/env python3
"""Gate: every `unsafe` in the audited crates is documented.

Audited trees: `crates/bitmat/src` and `vendor/rayon/src` — the two
places the workspace uses `unsafe` (SIMD kernels and the work-stealing
pool). The rules enforced here:

1. Each crate root carries `#![deny(unsafe_op_in_unsafe_fn)]`, so an
   unsafe signature alone never licenses unsafe operations.
2. Every `unsafe {` block and `unsafe impl` is immediately preceded by a
   `// SAFETY:` comment (blank lines and attribute lines may intervene).
3. Every `unsafe fn` declaration carries a `# Safety` doc section in the
   doc comment directly above it.

Run from the repository root: `python3 ci/check_unsafe.py`.
"""

import re
import sys
from pathlib import Path

AUDITED = ["crates/bitmat/src", "vendor/rayon/src"]
ROOTS = ["crates/bitmat/src/lib.rs", "vendor/rayon/src/lib.rs"]


def preceded_by(lines, i, marker):
    """True if a comment containing `marker` sits directly above line i
    (skipping blank lines, attributes, and earlier comment lines)."""
    j = i - 1
    while j >= 0:
        s = lines[j].strip()
        if not s or s.startswith("#["):
            j -= 1
            continue
        if s.startswith("//"):
            if marker in s:
                return True
            j -= 1
            continue
        return False
    return False


def check_file(path):
    errors = []
    lines = path.read_text().splitlines()
    for i, line in enumerate(lines):
        code = line.split("//")[0]
        stripped = line.strip()
        # Block or impl: need a SAFETY: comment above, or inline on the
        # same line (match on the code part so comments don't false-hit).
        if re.search(r"\bunsafe\s*\{|\bunsafe impl\b", code):
            if "SAFETY:" not in line and not preceded_by(lines, i, "SAFETY:"):
                errors.append(f"{path}:{i + 1}: unsafe block without a SAFETY: comment")
        # Declaration: need a `# Safety` doc section above.
        if re.search(r"\bunsafe fn\b", code) and not stripped.startswith("//"):
            # Function-pointer types (`execute: unsafe fn(...)`) are not
            # declarations.
            if re.search(r"\bunsafe fn\s+\w+", code):
                if not preceded_by(lines, i, "# Safety"):
                    errors.append(
                        f"{path}:{i + 1}: unsafe fn without a `# Safety` doc section"
                    )
    return errors


def main():
    repo = Path(__file__).resolve().parent.parent
    errors = []
    for root in ROOTS:
        text = (repo / root).read_text()
        if "#![deny(unsafe_op_in_unsafe_fn)]" not in text:
            errors.append(f"{root}: missing #![deny(unsafe_op_in_unsafe_fn)]")
    checked = 0
    for tree in AUDITED:
        for path in sorted((repo / tree).rglob("*.rs")):
            errors.extend(check_file(path))
            checked += 1
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} undocumented unsafe site(s).")
        return 1
    print(f"unsafe hygiene OK across {checked} file(s) in {', '.join(AUDITED)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
