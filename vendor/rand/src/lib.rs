//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the rand 0.9 API it actually uses, backed by a
//! deterministic xoshiro256++ generator seeded through SplitMix64. The
//! surface mirrors the real crate — `RngCore` (object-safe core),
//! `Rng` (blanket extension trait), `SeedableRng`, `rngs::StdRng`, and
//! `seq::SliceRandom` — so swapping the real dependency back in is a
//! manifest-only change.
//!
//! Statistical quality: xoshiro256++ passes BigCrush; every consumer in
//! this workspace draws through `Rng`'s derived methods, so the stream is
//! deterministic per seed but *not* identical to the real `StdRng`
//! (ChaCha12). Tests in this repository only rely on per-seed determinism
//! and statistical quality, never on the exact ChaCha stream.

/// The object-safe core of a random number generator.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the stand-in for
/// `StandardUniform: Distribution<T>`).
pub trait Random {
    /// Draws a uniformly distributed value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that `Rng::random_range` accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + f64::random(rng) * (hi - lo)
    }
}

/// Unbiased uniform draw from `[0, span)` via Lemire's multiply-shift with
/// rejection. `span` must be nonzero.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let lo = m as u64;
        if lo < span {
            // Reject the biased sliver: draws whose low half falls below
            // `2^64 mod span` over-represent some outputs.
            let threshold = span.wrapping_neg() % span;
            if lo < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible RNGs from seeds.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    ///
    /// Not the real rand crate's ChaCha12 — seeds produce different (but
    /// equally deterministic and well-distributed) streams.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02, "mean off: {sum}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            seen[rng.random_range(1..16u32) as usize] = true;
            assert!(rng.random_range(0..3usize) < 3);
        }
        assert!(!seen[0]);
        assert!(seen[1..16].iter().all(|&s| s), "some values never drawn");
    }

    #[test]
    fn bool_bias() {
        let mut rng = StdRng::seed_from_u64(3);
        let ones = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((ones as f64 - 25_000.0).abs() < 900.0, "biased: {ones}");
    }

    #[test]
    fn object_safe_core_usable_through_dyn() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynref: &mut dyn RngCore = &mut rng;
        let x: u64 = dynref.random();
        let _ = x;
        let b = dynref.random_bool(0.5);
        let _ = b;
    }

    #[test]
    fn shuffle_is_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
