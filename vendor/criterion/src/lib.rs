//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates.io, so this minimal harness
//! implements the subset of the criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::new`], `b.iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical pipeline it runs a short warm-up
//! plus `sample_size` timed iterations and prints the mean per-iteration
//! wall-clock time — enough for the relative comparisons the paper's
//! figures make (SymPhase vs frame scaling shapes).

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Names one benchmark within a group: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds the id `{function}/{parameter}`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{parameter}", function.into()),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Measurement kinds (only wall-clock time is implemented).
pub mod measurement {
    /// Wall-clock time measurement, the criterion default.
    #[derive(Debug, Default)]
    pub struct WallTime;
}

/// The benchmark runner.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark closure.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs a benchmark closure with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Ends the group (prints nothing extra; kept for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let mean = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters as u32
        };
        println!(
            "bench {:<48} {:>14.6} ms/iter",
            format!("{}/{id}", self.name),
            mean.as_secs_f64() * 1e3
        );
    }
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` once as warm-up and then `iters` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Groups benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Accept and ignore harness flags (e.g. --bench) cargo passes.
            $($group();)+
        }
    };
}
