//! Offline stand-in for the `rayon` crate.
//!
//! The build environment cannot fetch crates.io, so this crate provides
//! the fork-join primitives the workspace's chunked parallel samplers
//! use — [`join`] and [`current_num_threads`] — implemented over
//! `std::thread::scope`. Unlike real rayon there is no work-stealing
//! pool: each `join` spawns one OS thread for its right-hand side. The
//! samplers built on top recurse over chunk ranges, so the spawn count
//! stays logarithmic in the chunk count per level and bounded by the
//! chunk count overall.

/// Number of threads worth fanning out to (the machine's available
/// parallelism; rayon reports its pool size here).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// `oper_a` runs on the calling thread while `oper_b` runs on a scoped
/// worker thread. Panics in either closure propagate to the caller once
/// both have finished, matching rayon's semantics.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let handle_b = scope.spawn(oper_b);
        let ra = oper_a();
        match handle_b.join() {
            Ok(rb) => (ra, rb),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_sides() {
        let (a, b) = join(|| 2 + 2, || "right".len());
        assert_eq!((a, b), (4, 5));
    }

    #[test]
    fn join_runs_concurrently() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let flag = AtomicBool::new(false);
        // The left side waits for the right side: only possible if the
        // right side actually runs on another thread.
        join(
            || {
                while !flag.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            },
            || flag.store(true, Ordering::Release),
        );
    }

    #[test]
    fn nested_joins_compose() {
        let ((a, b), (c, d)) = join(|| join(|| 1, || 2), || join(|| 3, || 4));
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    fn panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            join(|| (), || panic!("boom"));
        });
        assert!(caught.is_err());
    }

    #[test]
    fn thread_count_positive() {
        assert!(current_num_threads() >= 1);
    }
}
