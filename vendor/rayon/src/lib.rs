//! Offline stand-in for the `rayon` crate: a real work-stealing pool.
//!
//! The build environment cannot fetch crates.io, so this crate provides
//! the fork-join primitives the workspace's chunked parallel samplers
//! use — [`join`], [`scope`], and [`current_num_threads`] — implemented
//! over an in-tree work-stealing thread pool rather than per-call thread
//! spawns (which the previous stand-in used: one OS thread per `join`
//! right-hand side).
//!
//! # Design
//!
//! One process-wide `Registry` is built lazily on first use:
//!
//! * **Workers** — `RAYON_NUM_THREADS` (else `available_parallelism`)
//!   detached OS threads, each owning a deque of `JobRef`s. Owners push
//!   and pop at the back (LIFO — the hot fork-join discipline: the job
//!   you just forked is the one whose data is still in cache), thieves
//!   steal from the front (FIFO — the oldest, largest-granularity work).
//! * **Injector** — a global queue external (non-pool) threads push to;
//!   workers drain it like any other steal victim.
//! * **Waiting = stealing** — a thread blocked on a fork's completion
//!   ([`join`]'s right side, [`scope`]'s pending spawns) executes other
//!   pool jobs while it waits instead of parking. That keeps nested joins
//!   deadlock-free with any pool size (including one worker): every job
//!   is reachable through the injector or a worker deque, and no thread
//!   holds a lock while waiting.
//! * **Panics** — a job's panic is caught where it ran, carried in its
//!   result slot, and resumed on the thread that forked it once *all* of
//!   that fork's children finished (unwinding earlier would free stack
//!   frames a still-running sibling references).
//!
//! [`join`] is bit-exact in observable effect order per caller: both
//! closures always run to completion before `join` returns, so the
//! samplers' chunk-seeded determinism (serial ≡ parallel per seed) is
//! preserved regardless of which thread executes which side.

// Every `unsafe fn` here must open its own `unsafe {}` block with a
// `// SAFETY:` justification — an unsafe signature alone does not license
// unsafe operations. CI greps for undocumented blocks.
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Number of threads in the pool (the machine's available parallelism,
/// or the `RAYON_NUM_THREADS` override, like real rayon).
pub fn current_num_threads() -> usize {
    registry().workers.len()
}

/// A type-erased pointer to a job living on a stack frame or the heap.
///
/// The `execute` function knows the concrete type; `data` stays valid
/// until `execute` runs because the forking thread never unwinds past
/// the frame before the job's completion latch is set (stack jobs) or
/// because the job owns itself (heap jobs).
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed once, on one thread, and the
// pointee is either pinned on a stack frame the forking thread keeps
// alive until the latch is set, or heap-owned by the job itself.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    /// Must be called at most once; `data` must still be alive (stack
    /// jobs: the forking frame has not unwound; heap jobs: not yet run).
    unsafe fn execute(self) {
        // SAFETY: forwarded — `execute` was captured from the concrete
        // job type alongside `data` in `as_job_ref`/`push`, so the
        // pointer matches the function's expected pointee.
        unsafe { (self.execute)(self.data) };
    }
}

/// A fork's right-hand side, pinned on the forking thread's stack.
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    done: AtomicBool,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R,
{
    fn new(func: F) -> Self {
        Self {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            execute: Self::execute_erased,
        }
    }

    /// # Safety
    /// `data` must point at a live `StackJob<F, R>` whose job has not
    /// executed yet; no other thread may touch the job concurrently.
    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: per the contract, `data` is this job's address and the
        // forking frame keeps it alive until `done` is set below.
        let this = unsafe { &*(data as *const Self) };
        // SAFETY: the cell accesses here and below are exclusive because
        // a JobRef is executed by exactly one thread, exactly once, and
        // the forking thread does not touch the cells before the latch.
        let func = unsafe { &mut *this.func.get() }
            .take()
            .expect("job executed twice");
        let result = catch_unwind(AssertUnwindSafe(func));
        // SAFETY: as above — still the sole accessor until `done` is set.
        unsafe { *this.result.get() = Some(result) };
        // Release: the result write above happens-before any latch
        // observer's acquire load.
        this.done.store(true, Ordering::Release);
        registry().notify();
    }

    /// Takes the result after the latch is set.
    ///
    /// # Safety
    /// `done` must have been observed `true` with acquire ordering, and
    /// no other thread may access the job afterwards.
    unsafe fn take_result(&self) -> std::thread::Result<R> {
        // SAFETY: the acquire load of `done` synchronizes with the
        // executor's release store, so the result slot is written and the
        // executor is finished with the cell.
        unsafe { &mut *self.result.get() }
            .take()
            .expect("job result missing")
    }
}

/// A heap-allocated fire-and-forget job ([`Scope::spawn`]).
struct HeapJob {
    job: Box<dyn FnOnce() + Send>,
}

impl HeapJob {
    /// # Safety
    /// `data` must be a pointer produced by `Box::into_raw` on a
    /// `HeapJob`, and must not be executed twice (the Box is reclaimed
    /// here).
    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: per the contract, this is the unique owner of the
        // allocation `Scope::spawn` leaked via `Box::into_raw`.
        let this = unsafe { Box::from_raw(data as *mut HeapJob) };
        (this.job)();
    }
}

/// The process-wide pool: worker deques, the external-thread injector,
/// and the sleep/wake machinery.
struct Registry {
    /// `workers[i]` is worker `i`'s deque. Owner: back (LIFO). Thieves:
    /// front (FIFO).
    workers: Vec<Mutex<VecDeque<JobRef>>>,
    /// Queue external (non-pool) threads push to.
    injector: Mutex<VecDeque<JobRef>>,
    /// Parking for idle workers; notified on every push and every latch
    /// set.
    sleep: Mutex<()>,
    wake: Condvar,
}

thread_local! {
    /// This thread's worker index, if it belongs to the pool.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let threads = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let registry = Registry {
            workers: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        };
        for index in 0..threads {
            std::thread::Builder::new()
                .name(format!("symphase-worker-{index}"))
                .spawn(move || worker_main(index))
                .expect("failed to spawn pool worker");
        }
        registry
    })
}

/// Worker main loop: drain own deque LIFO, then steal; park when the
/// whole pool is dry. Workers are detached — process exit reclaims them.
fn worker_main(index: usize) {
    WORKER_INDEX.with(|w| w.set(Some(index)));
    let registry = registry();
    loop {
        if let Some(job) = registry.find_work(Some(index)) {
            // SAFETY: the job was queued exactly once and its data is
            // kept alive by the forking thread (stack) or itself (heap).
            unsafe { job.execute() };
            continue;
        }
        // Re-check under the sleep lock so a push between the failed
        // scan and the wait cannot be missed, then park with a timeout
        // as a belt-and-braces backstop.
        let guard = registry.sleep.lock().unwrap();
        if registry.has_work() {
            continue;
        }
        let _unused = registry.wake.wait_timeout(guard, Duration::from_millis(10));
    }
}

impl Registry {
    /// Queues a job from the current thread: own deque back for workers,
    /// injector for external threads.
    fn push(&self, job: JobRef) {
        match WORKER_INDEX.with(|w| w.get()) {
            Some(index) => self.workers[index].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        self.notify();
    }

    fn notify(&self) {
        let _guard = self.sleep.lock().unwrap();
        self.wake.notify_all();
    }

    fn has_work(&self) -> bool {
        !self.injector.lock().unwrap().is_empty()
            || self.workers.iter().any(|w| !w.lock().unwrap().is_empty())
    }

    /// Finds a job: own deque back (LIFO) if `me` is a worker, then the
    /// injector, then other workers' fronts (FIFO steal).
    fn find_work(&self, me: Option<usize>) -> Option<JobRef> {
        if let Some(index) = me {
            if let Some(job) = self.workers[index].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let n = self.workers.len();
        let start = me.map_or(0, |i| i + 1);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(job) = self.workers[victim].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Runs pool jobs until `done` returns true. Any thread may call
    /// this — external threads steal too, so the thread that forked work
    /// contributes instead of idling, and no configuration can deadlock.
    fn work_until(&self, done: &dyn Fn() -> bool) {
        let me = WORKER_INDEX.with(|w| w.get());
        let mut spins = 0u32;
        while !done() {
            if let Some(job) = self.find_work(me) {
                // SAFETY: as in `worker_main`.
                unsafe { job.execute() };
                spins = 0;
            } else if spins < 64 {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// `oper_b` is forked onto the pool (this thread's deque for workers, the
/// injector otherwise) and `oper_a` runs on the calling thread; if no
/// thief has taken `oper_b` by then, the caller pops it back and runs it
/// inline — the LIFO fast path that makes deeply nested joins cheap.
/// While `oper_b` runs elsewhere the caller executes other pool jobs
/// rather than blocking.
///
/// Panics in either closure propagate to the caller once **both** have
/// finished (a still-running side may reference the caller's frame, so
/// unwinding earlier would be unsound). When both panic, `oper_a`'s
/// payload wins, matching rayon.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = registry();
    let job_b = StackJob::new(oper_b);
    let job_b_ref = job_b.as_job_ref();
    registry.push(job_b_ref);

    let result_a = catch_unwind(AssertUnwindSafe(oper_a));

    // Fast path: if our fork is still where we pushed it (back of our
    // own deque / back of the injector), run it inline.
    let popped = match WORKER_INDEX.with(|w| w.get()) {
        Some(index) => {
            let mut deque = registry.workers[index].lock().unwrap();
            pop_if_is(&mut deque, job_b_ref.data)
        }
        None => {
            let mut injector = registry.injector.lock().unwrap();
            pop_if_is(&mut injector, job_b_ref.data)
        }
    };
    if let Some(job) = popped {
        // SAFETY: this is the job we queued above; it has not executed.
        unsafe { job.execute() };
    } else {
        registry.work_until(&|| job_b.done.load(Ordering::Acquire));
    }

    // SAFETY: the latch is set, so the result slot is written.
    let result_b = unsafe { job_b.take_result() };
    match (result_a, result_b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(panic_a), _) => resume_unwind(panic_a),
        (_, Err(panic_b)) => resume_unwind(panic_b),
    }
}

/// Pops the back job if it is the one at `data` (LIFO identity check:
/// anything we forked later has already been popped or stolen).
fn pop_if_is(deque: &mut VecDeque<JobRef>, data: *const ()) -> Option<JobRef> {
    if deque.back().is_some_and(|j| std::ptr::eq(j.data, data)) {
        deque.pop_back()
    } else {
        None
    }
}

/// A fork scope: spawned closures may borrow from the enclosing frame
/// (`'scope`), and [`scope`] does not return until every spawn finished.
pub struct Scope<'scope> {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    /// Invariant over `'scope` (mirrors rayon): spawned closures may
    /// borrow `'scope` data but must not outlive it.
    marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `body` onto the pool. It may run on any thread, any time
    /// before the enclosing [`scope`] returns.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let scope_ptr: *const Scope<'scope> = self;
        let addr = scope_ptr as usize;
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            // SAFETY: `scope()` keeps the Scope alive (and this frame's
            // borrows valid) until `pending` drains to zero, which cannot
            // happen before this closure finishes.
            let scope = unsafe { &*(addr as *const Scope<'scope>) };
            let result = catch_unwind(AssertUnwindSafe(|| body(scope)));
            if let Err(payload) = result {
                let mut slot = scope.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            scope.pending.fetch_sub(1, Ordering::SeqCst);
            registry().notify();
        });
        // SAFETY: erase 'scope to store the job; `scope()` blocks until
        // the job completes, so the borrow never dangles.
        let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
        let heap = Box::new(HeapJob { job });
        registry().push(JobRef {
            data: Box::into_raw(heap) as *const (),
            execute: HeapJob::execute_erased,
        });
    }
}

/// Creates a fork scope, runs `op` in it, waits for every
/// [`Scope::spawn`] to finish (stealing pool work meanwhile), then
/// returns `op`'s result. The first panic from `op` or any spawn is
/// resumed on the caller after the scope has fully quiesced.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let scope = Scope {
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
        marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    registry().work_until(&|| scope.pending.load(Ordering::SeqCst) == 0);
    if let Err(payload) = result {
        resume_unwind(payload);
    }
    let spawn_panic = scope.panic.lock().unwrap().take();
    if let Some(payload) = spawn_panic {
        resume_unwind(payload);
    }
    result.unwrap_or_else(|_| unreachable!())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_sides() {
        let (a, b) = join(|| 2 + 2, || "right".len());
        assert_eq!((a, b), (4, 5));
    }

    #[test]
    fn join_runs_concurrently() {
        use std::sync::atomic::AtomicBool;
        let flag = AtomicBool::new(false);
        // The left side waits for the right side: only possible if the
        // right side actually runs on another thread.
        join(
            || {
                while !flag.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            },
            || flag.store(true, Ordering::Release),
        );
    }

    #[test]
    fn nested_joins_compose() {
        let ((a, b), (c, d)) = join(|| join(|| 1, || 2), || join(|| 3, || 4));
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    fn deeply_nested_joins_sum() {
        // Recursive fork-join over a range: exercises the LIFO fast path
        // and stealing under real contention.
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 32 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        let n = 100_000u64;
        assert_eq!(sum(0, n), n * (n - 1) / 2);
    }

    #[test]
    fn panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            join(|| (), || panic!("boom"));
        });
        assert!(caught.is_err());
    }

    #[test]
    fn left_panic_still_waits_for_right() {
        // If the left side panics, join must not unwind until the right
        // side (which may borrow the caller's frame) has finished.
        let finished = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            join(
                || panic!("left"),
                || {
                    std::thread::sleep(Duration::from_millis(20));
                    finished.fetch_add(1, Ordering::SeqCst);
                },
            );
        }));
        assert!(caught.is_err());
        assert_eq!(finished.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn both_panics_prefer_left() {
        let caught = std::panic::catch_unwind(|| {
            join(|| panic!("left wins"), || panic!("right loses"));
        })
        .unwrap_err();
        let message = caught.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(message, "left wins");
    }

    #[test]
    fn thread_count_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn scope_waits_for_spawns() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn scope_spawns_can_nest() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn scope_spawn_panic_propagates_after_quiesce() {
        let finished = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|_| panic!("spawned boom"));
                s.spawn(|_| {
                    std::thread::sleep(Duration::from_millis(10));
                    finished.fetch_add(1, Ordering::SeqCst);
                });
            });
        }));
        assert!(caught.is_err());
        // The non-panicking sibling must have completed before unwind.
        assert_eq!(finished.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scope_borrows_stack_data() {
        let mut results = [0usize; 16];
        scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i * i);
            }
        });
        for (i, &v) in results.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn join_inside_scope_inside_join() {
        // Mixed nesting: the shapes the samplers actually produce.
        let total = AtomicUsize::new(0);
        let (a, _) = join(
            || {
                scope(|s| {
                    for _ in 0..4 {
                        s.spawn(|_| {
                            let (x, y) = join(|| 1usize, || 2usize);
                            total.fetch_add(x + y, Ordering::SeqCst);
                        });
                    }
                });
                7usize
            },
            || total.fetch_add(100, Ordering::SeqCst),
        );
        assert_eq!(a, 7);
        assert_eq!(total.load(Ordering::SeqCst), 112);
    }

    #[test]
    fn many_concurrent_joins_from_external_threads() {
        // External (non-pool) threads fork through the injector; make
        // sure results stay correct when several do so at once.
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let (a, b) = join(move || t * 10, move || t * 100);
                    a + b
                })
            })
            .collect();
        for (t, handle) in handles.into_iter().enumerate() {
            assert_eq!(handle.join().unwrap(), t * 110);
        }
    }
}
