//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use — `Strategy`, `any`, `Just`, ranges, tuples,
//! `collection::vec`, `prop_oneof!`, `prop_map`/`prop_flat_map`, the
//! `proptest!` test macro and `prop_assert*` — over the vendored `rand`
//! crate. Cases are generated from a deterministic per-case seed.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its inputs via `Debug` but is not minimized), and value distributions
//! are plain uniform draws rather than proptest's bias-towards-edge-cases
//! regime.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error raised by `prop_assert*` inside a test case body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a generated test-case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing a constant (cloned) value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let k = rng.random_range(0..self.0.len());
        self.0[k].generate(rng)
    }
}

/// Strategy for "any value of `T`" (the stand-in for `any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Creates the uniform strategy over all values of `T`.
pub fn any<T: rand::Random>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::Random> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random()
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_strategy_for_range_inclusive {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_range_inclusive!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Length specification for [`vec()`]: an exact length or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derives the deterministic RNG for one test case.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // Stable per-(test, case) seed so failures reproduce across runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($(|$weight:expr =>|)? $strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a property body, failing the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __proptest_rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let result: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs: {}",
                        case + 1,
                        cfg.cases,
                        e,
                        concat!($(stringify!($arg), " "),+)
                    );
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn tuples_and_maps_compose(v in crate::collection::vec((0u8..10, any::<bool>()), 3..9)) {
            prop_assert!(v.len() >= 3 && v.len() < 9);
            for (x, _) in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn oneof_covers_all_arms(x in prop_oneof![Just(1u32), Just(2u32), 3u32..10]) {
            prop_assert!((1..10).contains(&x));
        }
    }

    proptest! {
        #[test]
        fn flat_map_respects_outer(pair in (1usize..5).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(any::<u16>(), n))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        assert_eq!(
            crate::case_rng("t", 3).next_u64(),
            crate::case_rng("t", 3).next_u64()
        );
        assert_ne!(
            crate::case_rng("t", 3).next_u64(),
            crate::case_rng("t", 4).next_u64()
        );
    }
}
