//! Head-to-head on the paper's Fig. 3 workload: sampler initialization time
//! vs time to generate 10,000 samples, SymPhase vs the Pauli-frame
//! baseline.
//!
//! This is a miniature of the full benchmark harness (`symphase-bench`);
//! it runs one circuit size so it finishes in seconds.
//!
//! Run with: `cargo run --release --example random_sampling [n]`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase::circuit::generators::fig3c_circuit;
use symphase::core::{PhaseRepr, SymPhaseSampler};
use symphase::frame::FrameSampler;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let repr = match std::env::args().nth(2).as_deref() {
        Some("dense") => PhaseRepr::Dense,
        _ => PhaseRepr::Sparse,
    };
    let shots = 10_000;
    let circuit = fig3c_circuit(n, 0.001, 7);
    let stats = circuit.stats();
    println!(
        "Fig. 3c workload: n={n}, {} gates, {} measurements, {} noise symbols",
        stats.gates, stats.measurements, stats.noise_symbols
    );

    let t0 = Instant::now();
    let sym = SymPhaseSampler::with_repr(&circuit, repr);
    let sym_init = t0.elapsed();
    let t0 = Instant::now();
    let s1 = sym.sample(shots, &mut StdRng::seed_from_u64(1));
    let sym_sample = t0.elapsed();

    let t0 = Instant::now();
    let frame = FrameSampler::new(&circuit);
    let frame_init = t0.elapsed();
    let t0 = Instant::now();
    let s2 = frame.sample(shots, &mut StdRng::seed_from_u64(2));
    let frame_sample = t0.elapsed();

    println!("\n{:<12}{:>16}{:>24}", "", "init sampler", "10,000 samples");
    println!(
        "{:<12}{:>16}{:>24}",
        "SymPhase",
        format!("{sym_init:.2?}"),
        format!("{sym_sample:.2?}")
    );
    println!(
        "{:<12}{:>16}{:>24}",
        "frame",
        format!("{frame_init:.2?}"),
        format!("{frame_sample:.2?}")
    );

    let weights: Vec<usize> = sym.measurement_exprs().iter().map(|e| e.weight()).collect();
    let mean_w = weights.iter().sum::<usize>() as f64 / weights.len() as f64;
    let max_w = weights.iter().max().copied().unwrap_or(0);
    println!(
        "\nmeasurement-expression weights: mean {mean_w:.1}, max {max_w} (of {} symbols)",
        sym.symbol_table().num_symbols()
    );

    // Sanity: both samplers agree on the mean outcome rate.
    let rate =
        |m: &symphase::bitmat::BitMatrix| m.count_ones() as f64 / (m.rows() * m.cols()) as f64;
    println!(
        "\nmean outcome-1 rates: SymPhase {:.4}, frame {:.4}",
        rate(&s1),
        rate(&s2)
    );
    println!("(expected shape per the paper: SymPhase wins sampling time; its");
    println!(" initialization pays the symbolic-phase overhead.)");
}
