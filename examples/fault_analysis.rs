//! Fault analysis on the paper's Fig. 1 circuit: phase symbolization makes
//! the fault → measurement relationship explicit.
//!
//! The circuit prepares a 4-qubit GHZ state, suffers faults
//! `Z^{s1} X^{s2} X^{s3} X^{s4}`, un-prepares, and measures every qubit.
//! The paper's caption promises `m1 = s1`, `m2 = s2`, `m3 = s2⊕s3`,
//! `m4 = s3⊕s4` — this example prints exactly those expressions straight
//! from the sampler.
//!
//! Run with: `cargo run --release --example fault_analysis`

use symphase::circuit::{Circuit, NoiseChannel};
use symphase::core::SymPhaseSampler;

fn main() {
    let mut c = Circuit::new(4);
    // Prepare GHZ.
    c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
    // The faults of Fig. 1 (probabilities only matter for sampling).
    c.noise(NoiseChannel::ZError(0.01), &[0]); // s1
    c.noise(NoiseChannel::XError(0.01), &[1]); // s2
    c.noise(NoiseChannel::XError(0.01), &[2]); // s3
    c.noise(NoiseChannel::XError(0.01), &[3]); // s4
                                               // Un-prepare and measure.
    c.cx(2, 3).cx(1, 2).cx(0, 1).h(0);
    c.measure_all();

    let sampler = SymPhaseSampler::new(&c);
    println!("Fig. 1 symbolic measurement outcomes:");
    for (i, e) in sampler.measurement_exprs().iter().enumerate() {
        println!("  m{} = {e}", i + 1);
    }

    // Which faults flip which outcome: the sensitivity matrix.
    println!("\nfault sensitivity (rows: measurements, cols: symbols s1..s4):");
    for (i, e) in sampler.measurement_exprs().iter().enumerate() {
        let row: String = (1..=4u32)
            .map(|s| {
                if e.symbol_ids().contains(&s) {
                    '1'
                } else {
                    '.'
                }
            })
            .collect();
        println!("  m{}: {row}", i + 1);
    }

    // The same machinery applied to the §3.1 two-qubit example.
    let mut c2 = Circuit::new(2);
    c2.h(0).cx(0, 1);
    c2.noise(NoiseChannel::XError(0.1), &[0]);
    c2.noise(NoiseChannel::XError(0.1), &[1]);
    c2.measure(0);
    c2.measure(1);
    let s2 = SymPhaseSampler::new(&c2);
    println!("\n§3.1 example (s3 is the fresh measurement coin):");
    for (i, e) in s2.measurement_exprs().iter().enumerate() {
        println!("  m{} = {e}", i + 1);
    }
}
