//! Rotated surface-code memory: detector statistics and fault sensitivity.
//!
//! Builds distance-3 and distance-5 rotated surface-code memory circuits,
//! samples their detectors with SymPhase, and prints per-round detector
//! firing rates plus the symbolic structure of a few detectors (which
//! physical faults each one sees).
//!
//! Run with: `cargo run --release --example surface_code`

use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase::circuit::generators::{surface_code_memory, SurfaceCodeConfig};
use symphase::core::SymPhaseSampler;

fn main() {
    let shots = 50_000;
    for d in [3usize, 5] {
        let rounds = d;
        let p = 0.01;
        let c = surface_code_memory(&SurfaceCodeConfig {
            distance: d,
            rounds,
            data_error: p,
            measure_error: p,
        });
        let stats = c.stats();
        println!(
            "d={d}: {} qubits, {} gates, {} measurements, {} detectors, {} noise sites",
            c.num_qubits(),
            stats.gates,
            stats.measurements,
            c.num_detectors(),
            stats.noise_sites
        );

        let sampler = SymPhaseSampler::new(&c);
        let batch = sampler.sample_batch(shots, &mut StdRng::seed_from_u64(d as u64));

        // Average detector firing rate (syndrome density).
        let fired = batch.detectors.count_ones();
        let rate = fired as f64 / (sampler.num_detectors() * shots) as f64;
        println!("  mean detector firing rate at p={p}: {rate:.4}");

        // Logical observable flip rate without decoding (raw).
        let flips = (0..shots).filter(|&s| batch.observables.get(0, s)).count();
        println!(
            "  undecoded logical flip rate: {:.4}",
            flips as f64 / shots as f64
        );

        // Show the fault-sensitivity of the first few detectors.
        println!("  symbolic detector structure (first 3):");
        for det in 0..3.min(sampler.num_detectors()) {
            let e = sampler.detector_expr(det);
            println!("    D{det}: {} fault symbols, e.g. {}", e.weight(), e);
        }
        println!();
    }
    println!("expected shape: firing rates grow with p and are stable in d;");
    println!("detector expressions contain only fault symbols (coins cancel).");
}
