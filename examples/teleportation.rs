//! Dynamic circuits: teleportation with classically-controlled corrections.
//!
//! The paper's §6 sketches how symbolic phases extend to dynamic circuits:
//! a measurement outcome is an expression `e`, and a classically-controlled
//! Pauli `X^e` is applied with the same mechanism as a fault. This example
//! teleports a state through a Bell pair, applies the `X^{m1}`/`Z^{m0}`
//! corrections, and shows that the verification measurement is symbolically
//! zero — before any sampling happens.
//!
//! Run with: `cargo run --release --example teleportation`

use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase::circuit::generators::teleportation;
use symphase::circuit::{Circuit, PauliKind};
use symphase::core::SymPhaseSampler;
use symphase::frame::FrameSampler;

fn main() {
    let c = teleportation();
    println!("teleportation circuit:\n{c}");

    let sampler = SymPhaseSampler::new(&c);
    println!("symbolic outcomes:");
    for (i, e) in sampler.measurement_exprs().iter().enumerate() {
        println!("  m{i} = {e}");
    }
    println!(
        "verification outcome m2 is the constant {} — teleportation provably works",
        sampler.measurement_expr(2)
    );

    // Sampling confirms it, as does the frame baseline.
    let shots = 100_000;
    let s = sampler.sample(shots, &mut StdRng::seed_from_u64(7));
    let bad = (0..shots).filter(|&i| s.get(2, i)).count();
    println!("SymPhase: {bad}/{shots} failed verifications");
    let f = FrameSampler::new(&c).sample(shots, &mut StdRng::seed_from_u64(8));
    let bad = (0..shots).filter(|&i| f.get(2, i)).count();
    println!("frame:    {bad}/{shots} failed verifications");

    // Without the corrections the check fails for 3 of 4 outcome pairs.
    let mut broken = Circuit::new(3);
    broken.h(0).s(0);
    broken.h(1).cx(1, 2);
    broken.cx(0, 1).h(0);
    broken.measure(0);
    broken.measure(1);
    // (corrections omitted)
    broken.gate(symphase::circuit::Gate::SDag, &[2]);
    broken.h(2);
    broken.measure(2);
    let sb = SymPhaseSampler::new(&broken);
    println!(
        "\nwithout corrections, m2 = {} (depends on the Bell coins)",
        sb.measurement_expr(2)
    );

    // A feedback chain: swap a fault from one qubit to another classically.
    let mut chain = Circuit::new(2);
    chain.noise(symphase::circuit::NoiseChannel::XError(0.3), &[0]);
    chain.measure(0); // m0 = s1
    chain.feedback(PauliKind::X, -1, 1); // X^{m0} on qubit 1
    chain.measure(1); // m1 = s1 as well
    let sc = SymPhaseSampler::new(&chain);
    println!(
        "\nfeedback chain: m0 = {}, m1 = {} (the fault was classically copied)",
        sc.measurement_expr(0),
        sc.measurement_expr(1)
    );
}
