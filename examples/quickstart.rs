//! Quickstart: build a noisy circuit, sample it three ways, and compare.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A noisy 3-qubit GHZ circuit, written in the Stim-like text format.
    let circuit = Circuit::parse(
        "\
H 0
CX 0 1
CX 1 2
DEPOLARIZE1(0.05) 0 1 2
M 0 1 2
",
    )?;
    println!("circuit:\n{circuit}");
    let stats = circuit.stats();
    println!(
        "gates: {}, measurements: {}, noise symbols: {}",
        stats.gates, stats.measurements, stats.noise_symbols
    );

    // --- SymPhase (Algorithm 1): traverse once, then sample by matrix
    // multiplication.
    let sampler = SymPhaseSampler::new(&circuit);
    println!("\nsymbolic measurement expressions:");
    for (i, expr) in sampler.measurement_exprs().iter().enumerate() {
        println!("  m{i} = {expr}");
    }

    let shots = 100_000;
    let samples = sampler.sample(shots, &mut StdRng::seed_from_u64(1));
    let flip_rate =
        |m: usize| (0..shots).filter(|&s| samples.get(m, s)).count() as f64 / shots as f64;
    println!(
        "\nSymPhase outcome-1 rates: {:.4} {:.4} {:.4}",
        flip_rate(0),
        flip_rate(1),
        flip_rate(2)
    );

    // --- The Pauli-frame baseline gives the same distribution.
    let frame = FrameSampler::new(&circuit);
    let fsamples = frame.sample(shots, &mut StdRng::seed_from_u64(2));
    let frate = |m: usize| (0..shots).filter(|&s| fsamples.get(m, s)).count() as f64 / shots as f64;
    println!(
        "frame    outcome-1 rates: {:.4} {:.4} {:.4}",
        frate(0),
        frate(1),
        frate(2)
    );

    // --- A single-shot tableau run for good measure.
    let record = TableauSimulator::new(3, StdRng::seed_from_u64(3)).run(&circuit);
    println!(
        "one tableau shot: {}{}{}",
        u8::from(record.get(0)),
        u8::from(record.get(1)),
        u8::from(record.get(2))
    );
    Ok(())
}
