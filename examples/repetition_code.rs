//! Repetition-code memory: logical error rate vs physical error rate.
//!
//! The workload the paper's introduction motivates: evaluating a
//! fault-tolerant gadget needs millions of samples of its measurement
//! outcomes. Here SymPhase samples detector and observable values of
//! repetition-code memory circuits and estimates the logical error rate of
//! a majority-vote decoder for several distances — the classic threshold
//! plot shape (higher distance wins below ~p = 0.5 for this code/decoder).
//!
//! Run with: `cargo run --release --example repetition_code`

use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase::circuit::generators::{repetition_code_memory, RepetitionCodeConfig};
use symphase::core::SymPhaseSampler;

fn main() {
    let shots = 200_000;
    let distances = [3usize, 5, 7];
    let error_rates = [0.02, 0.05, 0.10, 0.20, 0.30];

    println!("logical error rate (majority-vote decoder), {shots} shots per point");
    print!("{:>8}", "p");
    for d in distances {
        print!("{:>12}", format!("d={d}"));
    }
    println!();

    for &p in &error_rates {
        print!("{p:>8.3}");
        for &d in &distances {
            let c = repetition_code_memory(&RepetitionCodeConfig {
                distance: d,
                rounds: 1,
                data_error: p,
                measure_error: 0.0,
            });
            let sampler = SymPhaseSampler::new(&c);
            let mut rng = StdRng::seed_from_u64(1000 + d as u64);
            let batch = sampler.sample_batch(shots, &mut rng);

            // Majority-vote decoder on the final data measurements (the
            // last `d` measurement rows): the encoded state is logical 0,
            // so a decoded 1 is a logical error.
            let nm = sampler.num_measurements();
            let mut logical_errors = 0usize;
            for shot in 0..shots {
                let ones = (nm - d..nm)
                    .filter(|&m| batch.measurements.get(m, shot))
                    .count();
                if ones * 2 > d {
                    logical_errors += 1;
                }
            }
            print!("{:>12.5}", logical_errors as f64 / shots as f64);
        }
        println!();
    }
    println!("\nexpected shape: for p < 0.5 the logical rate falls with distance.");
}
