//! Backend construction: every simulation engine behind one fallible
//! factory.
//!
//! The configuration half of this API — [`SimConfig`], [`EngineKind`],
//! [`BuildError`] — lives in `symphase_backend::config` and is re-exported
//! here; this module supplies the construction half, [`build_sampler`],
//! because only the facade crate links every engine.
//!
//! ```
//! use symphase::backend::{build_sampler, EngineKind, SimConfig};
//! use symphase::circuit::generators::ghz;
//!
//! let cfg = SimConfig::new().with_engine(EngineKind::Frame).with_seed(7);
//! let sampler = build_sampler(&ghz(3), &cfg)?;
//! let batch = sampler.sample_seeded(100, cfg.seed());
//! assert_eq!(batch.measurements.rows(), 3);
//! # Ok::<(), symphase::backend::BuildError>(())
//! ```

use symphase_backend::Sampler;
use symphase_circuit::Circuit;
use symphase_core::SymPhaseSampler;
use symphase_frame::FrameSampler;
use symphase_statevec::StateVecSampler;
use symphase_tableau::TableauSampler;

pub use symphase_backend::{BuildError, EngineKind, PhaseRepr, SamplingMethod, SimConfig};

/// The pre-`SimConfig` name of [`EngineKind`], kept so older call sites
/// keep compiling.
#[deprecated(
    since = "0.1.0",
    note = "use `EngineKind` and `build_sampler(&circuit, &SimConfig)` — the old \
            constructor path panicked instead of reporting `BuildError`s"
)]
pub type BackendKind = EngineKind;

/// Builds the configured engine for `circuit` — **the** sampler
/// constructor.
///
/// Validates the configuration ([`SimConfig::validate`]) and the
/// circuit/engine pairing (the state-vector qubit cap), then runs the
/// engine's initialization: a symbolic traversal for the SymPhase
/// variants, a reference tableau sample for the frame baseline, a circuit
/// copy for the per-shot engines. Every failure mode is a typed
/// [`BuildError`] — this function does not panic.
pub fn build_sampler(
    circuit: &Circuit,
    config: &SimConfig,
) -> Result<Box<dyn Sampler>, BuildError> {
    config.validate()?;
    // With `optimize` set, the engine is built from the optimizer's
    // verified output circuit — by construction bit-identical per seed
    // to sampling that output directly (`tests/opt.rs` pins this).
    let optimized;
    let circuit = if config.optimize() {
        optimized = symphase_analysis::optimize(circuit).circuit;
        &optimized
    } else {
        circuit
    };
    Ok(match config.engine() {
        EngineKind::SymPhase | EngineKind::SymPhaseSparse | EngineKind::SymPhaseDense => Box::new(
            SymPhaseSampler::with_config(circuit, config.effective_phase_repr(), config.sampling()),
        ),
        EngineKind::Frame => Box::new(FrameSampler::new(circuit)),
        EngineKind::Tableau => Box::new(TableauSampler::new(circuit)),
        EngineKind::StateVec => Box::new(StateVecSampler::try_new(circuit)?),
    })
}

/// The old panicking constructor path: builds `kind` for `circuit` with
/// every knob at its default.
///
/// # Panics
///
/// Panics on any condition [`build_sampler`] would report as a
/// [`BuildError`] (e.g. a circuit past the state-vector qubit cap).
#[deprecated(
    since = "0.1.0",
    note = "use `build_sampler(&circuit, &SimConfig::new().with_engine(kind))`"
)]
pub fn build(kind: EngineKind, circuit: &Circuit) -> Box<dyn Sampler> {
    match build_sampler(circuit, &SimConfig::new().with_engine(kind)) {
        Ok(s) => s,
        Err(e) => panic!("{e}"),
    }
}

/// The old panicking constructor path with an explicit sampling method.
///
/// # Panics
///
/// Panics on any condition [`build_sampler`] would report as a
/// [`BuildError`] (e.g. a sampling method on a non-SymPhase engine).
#[deprecated(
    since = "0.1.0",
    note = "use `build_sampler(&circuit, &SimConfig::new().with_engine(kind)\
            .with_sampling(method))`"
)]
pub fn build_with_sampling(
    kind: EngineKind,
    circuit: &Circuit,
    method: SamplingMethod,
) -> Box<dyn Sampler> {
    match build_sampler(
        circuit,
        &SimConfig::new().with_engine(kind).with_sampling(method),
    ) {
        Ok(s) => s,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphase_circuit::generators::ghz;
    use symphase_statevec::MAX_QUBITS;

    #[test]
    fn names_round_trip() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(EngineKind::from_name("bogus"), None);
    }

    #[test]
    fn factory_and_sampler_names_agree() {
        // The trait's `name()` is documented as the CLI `--engine` value:
        // every built backend must report the name it was selected by.
        let c = ghz(2);
        for kind in EngineKind::ALL {
            let s = build_sampler(&c, &SimConfig::new().with_engine(kind)).expect("builds");
            assert_eq!(s.name(), kind.name());
        }
    }

    #[test]
    fn every_backend_builds_and_samples_ghz() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let c = ghz(3);
        for kind in EngineKind::ALL {
            let s = build_sampler(&c, &SimConfig::new().with_engine(kind)).expect("builds");
            let batch = s.sample(200, &mut StdRng::seed_from_u64(1));
            assert_eq!(batch.measurements.rows(), 3);
            for shot in 0..200 {
                let v = batch.measurements.get(0, shot);
                for q in 1..3 {
                    assert_eq!(
                        batch.measurements.get(q, shot),
                        v,
                        "{} shot {shot}",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn statevec_cap_reports_a_typed_error() {
        let big = Circuit::new(MAX_QUBITS + 1);
        let cfg = SimConfig::new().with_engine(EngineKind::StateVec);
        let e = build_sampler(&big, &cfg).err().expect("must fail");
        assert_eq!(
            e,
            BuildError::CircuitTooLarge {
                engine: "statevec",
                qubits: MAX_QUBITS + 1,
                max_qubits: MAX_QUBITS,
            }
        );
        assert!(build_sampler(&big, &SimConfig::new().with_engine(EngineKind::Frame)).is_ok());
    }

    #[test]
    fn invalid_configs_fail_before_initialization() {
        let c = ghz(2);
        let cfg = SimConfig::new()
            .with_engine(EngineKind::Tableau)
            .with_sampling(SamplingMethod::Hybrid);
        assert!(matches!(
            build_sampler(&c, &cfg).err().expect("must fail"),
            BuildError::SamplingMethodUnsupported { .. }
        ));
    }

    #[test]
    fn phase_repr_flows_through_the_config() {
        let c = ghz(2);
        let cfg = SimConfig::new().with_phase_repr(PhaseRepr::Dense);
        // `symphase` honoring a pinned store reports the pinned name.
        let s = build_sampler(&c, &cfg).expect("builds");
        assert_eq!(s.name(), "symphase-dense");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_path_still_works() {
        let c = ghz(2);
        let s = build(EngineKind::Frame, &c);
        assert_eq!(s.name(), "frame");
        let s = build_with_sampling(EngineKind::SymPhase, &c, SamplingMethod::SparseRows);
        assert_eq!(s.name(), "symphase");
        let kind: BackendKind = EngineKind::Tableau;
        assert_eq!(kind.name(), "tableau");
    }
}
