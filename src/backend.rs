//! Backend selection: every simulation engine behind one factory.
//!
//! All four engines implement [`Sampler`]; this module names them and
//! builds them dynamically, which is what the CLI (`--engine`), the bench
//! harness, and the cross-backend equivalence tests route through.

use symphase_backend::Sampler;
use symphase_circuit::Circuit;
use symphase_core::{PhaseRepr, SamplingMethod, SymPhaseSampler};
use symphase_frame::FrameSampler;
use symphase_statevec::{StateVecSampler, MAX_QUBITS};
use symphase_tableau::TableauSampler;

/// The selectable sampler backends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// SymPhase (Algorithm 1) with the per-circuit automatic phase store.
    SymPhase,
    /// SymPhase pinned to the sparse phase store.
    SymPhaseSparse,
    /// SymPhase pinned to the dense phase store.
    SymPhaseDense,
    /// Stim-style Pauli-frame batch propagation.
    Frame,
    /// Per-shot concrete Aaronson–Gottesman tableau trajectories.
    Tableau,
    /// Per-shot dense state-vector trajectories (small circuits only).
    StateVec,
}

impl BackendKind {
    /// Every backend, in documentation order.
    pub const ALL: [BackendKind; 6] = [
        BackendKind::SymPhase,
        BackendKind::SymPhaseSparse,
        BackendKind::SymPhaseDense,
        BackendKind::Frame,
        BackendKind::Tableau,
        BackendKind::StateVec,
    ];

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::SymPhase => "symphase",
            BackendKind::SymPhaseSparse => "symphase-sparse",
            BackendKind::SymPhaseDense => "symphase-dense",
            BackendKind::Frame => "frame",
            BackendKind::Tableau => "tableau",
            BackendKind::StateVec => "statevec",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<BackendKind> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Whether this backend can simulate `circuit` (the dense ground
    /// truth is capped at [`MAX_QUBITS`] qubits).
    pub fn supports(self, circuit: &Circuit) -> bool {
        match self {
            BackendKind::StateVec => circuit.num_qubits() <= MAX_QUBITS,
            _ => true,
        }
    }

    /// Whether this backend honors a `M · B` sampling-method choice
    /// (`--sampling`); only the SymPhase engines multiply a measurement
    /// matrix.
    pub fn supports_sampling_method(self) -> bool {
        matches!(
            self,
            BackendKind::SymPhase | BackendKind::SymPhaseSparse | BackendKind::SymPhaseDense
        )
    }

    /// Builds the backend for `circuit` (runs the engine's
    /// initialization).
    ///
    /// # Panics
    ///
    /// Panics if the backend does not support the circuit (see
    /// [`BackendKind::supports`]).
    pub fn build(self, circuit: &Circuit) -> Box<dyn Sampler> {
        self.build_with_sampling(circuit, SamplingMethod::Auto)
    }

    /// Builds the backend with an explicit sampling-method choice for the
    /// SymPhase engines (the CLI's `--sampling`); engines without a
    /// measurement-matrix product ignore the method.
    ///
    /// # Panics
    ///
    /// Panics if the backend does not support the circuit (see
    /// [`BackendKind::supports`]).
    pub fn build_with_sampling(
        self,
        circuit: &Circuit,
        method: SamplingMethod,
    ) -> Box<dyn Sampler> {
        match self {
            BackendKind::SymPhase => Box::new(SymPhaseSampler::with_config(
                circuit,
                PhaseRepr::Auto,
                method,
            )),
            BackendKind::SymPhaseSparse => Box::new(SymPhaseSampler::with_config(
                circuit,
                PhaseRepr::Sparse,
                method,
            )),
            BackendKind::SymPhaseDense => Box::new(SymPhaseSampler::with_config(
                circuit,
                PhaseRepr::Dense,
                method,
            )),
            BackendKind::Frame => Box::new(FrameSampler::from_circuit(circuit)),
            BackendKind::Tableau => Box::new(TableauSampler::from_circuit(circuit)),
            BackendKind::StateVec => Box::new(StateVecSampler::from_circuit(circuit)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphase_circuit::generators::ghz;

    #[test]
    fn names_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::from_name("bogus"), None);
    }

    #[test]
    fn factory_and_sampler_names_agree() {
        // The trait's `name()` is documented as the CLI `--engine` value:
        // every built backend must report the name it was selected by.
        let c = ghz(2);
        for kind in BackendKind::ALL {
            assert_eq!(kind.build(&c).name(), kind.name());
        }
    }

    #[test]
    fn every_backend_builds_and_samples_ghz() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let c = ghz(3);
        for kind in BackendKind::ALL {
            assert!(kind.supports(&c));
            let s = kind.build(&c);
            let batch = s.sample(200, &mut StdRng::seed_from_u64(1));
            assert_eq!(batch.measurements.rows(), 3);
            for shot in 0..200 {
                let v = batch.measurements.get(0, shot);
                for q in 1..3 {
                    assert_eq!(
                        batch.measurements.get(q, shot),
                        v,
                        "{} shot {shot}",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn statevec_capped_by_qubit_count() {
        let big = symphase_circuit::Circuit::new(MAX_QUBITS + 1);
        assert!(!BackendKind::StateVec.supports(&big));
        assert!(BackendKind::Frame.supports(&big));
    }
}
