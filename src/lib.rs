//! SymPhase: phase symbolization for fast simulation of stabilizer circuits.
//!
//! A Rust reproduction of *"SymPhase: Phase Symbolization for Fast
//! Simulation of Stabilizer Circuits"* (Fang & Ying, DAC 2024,
//! arXiv:2311.03906). This facade crate re-exports the whole workspace:
//!
//! | Module | Contents |
//! |---|---|
//! | [`circuit`] | Circuit IR, Stim-like text format, workload generators |
//! | [`sampler_api`] | The shared backend layer: `Sampler` trait, `SampleBatch`, chunked parallel sampling |
//! | [`backend`] | Backend selection: any engine as a `Box<dyn Sampler>` by name |
//! | [`core`] | **Algorithm 1**: the SymPhase sampler (symbolic phases) |
//! | [`frame`] | Stim-style Pauli-frame baseline sampler |
//! | [`tableau`] | Aaronson–Gottesman tableau simulator & reference samples |
//! | [`statevec`] | Dense ground-truth simulator for validation |
//! | [`bitmat`] | Packed F₂ linear algebra and the Fig. 2 tableau layouts |
//!
//! # Quickstart
//!
//! ```
//! use symphase::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A noisy GHZ circuit in the Stim-like text format.
//! let circuit = Circuit::parse(
//!     "H 0\nCX 0 1\nCX 1 2\nX_ERROR(0.1) 0 1 2\nM 0 1 2\n",
//! )?;
//!
//! // Initialization: one traversal; Sampling: one matrix multiplication.
//! let sampler = SymPhaseSampler::new(&circuit);
//! let samples = sampler.sample(10_000, &mut StdRng::seed_from_u64(42));
//! assert_eq!(samples.rows(), 3);
//! assert_eq!(samples.cols(), 10_000);
//! # Ok::<(), symphase::circuit::ParseCircuitError>(())
//! ```

pub mod backend;
pub mod cli;

pub use symphase_backend as sampler_api;
pub use symphase_bitmat as bitmat;
pub use symphase_circuit as circuit;
pub use symphase_core as core;
pub use symphase_frame as frame;
pub use symphase_statevec as statevec;
pub use symphase_tableau as tableau;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::backend::BackendKind;
    pub use symphase_backend::{SampleBatch, Sampler};
    pub use symphase_bitmat::{BitMatrix, BitVec};
    pub use symphase_circuit::{Circuit, Gate, Instruction, NoiseChannel, PauliKind};
    pub use symphase_core::{PhaseRepr, SamplingMethod, SymExpr, SymPhaseSampler};
    pub use symphase_frame::FrameSampler;
    pub use symphase_statevec::StateVecSampler;
    pub use symphase_tableau::{reference_sample, TableauSampler, TableauSimulator};
}
