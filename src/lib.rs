//! SymPhase: phase symbolization for fast simulation of stabilizer circuits.
//!
//! A Rust reproduction of *"SymPhase: Phase Symbolization for Fast
//! Simulation of Stabilizer Circuits"* (Fang & Ying, DAC 2024,
//! arXiv:2311.03906). This facade crate re-exports the whole workspace:
//!
//! | Module | Contents |
//! |---|---|
//! | [`circuit`] | Circuit IR, Stim-like text format, workload generators |
//! | [`analysis`] | `symphase lint`: tableau-dataflow dead-code analysis, symbolic constant detection, structural lints |
//! | [`sampler_api`] | The shared backend layer: `Sampler` trait, `SampleBatch`, `SimConfig`, `ShotSink` streaming, output formats |
//! | [`backend`] | Backend construction: `build_sampler` turns a `SimConfig` into any engine as a `Box<dyn Sampler>` |
//! | [`core`] | **Algorithm 1**: the SymPhase sampler (symbolic phases) |
//! | [`frame`] | Stim-style Pauli-frame baseline sampler |
//! | [`tableau`] | Aaronson–Gottesman tableau simulator & reference samples |
//! | [`statevec`] | Dense ground-truth simulator for validation |
//! | [`bitmat`] | Packed F₂ linear algebra and the Fig. 2 tableau layouts |
//! | [`serve`] | `symphase serve`/`request`: the sampling daemon — SPH1 wire protocol, content-hash circuit cache, shot-range sharding, BUSY backpressure |
//!
//! # Quickstart
//!
//! The configured path: describe the run with a [`backend::SimConfig`],
//! build any engine fallibly with [`backend::build_sampler`], and stream
//! shots to a [`sampler_api::ShotSink`] — memory stays `O(chunk)` however
//! many shots you draw.
//!
//! ```
//! use symphase::prelude::*;
//!
//! // A noisy GHZ circuit in the Stim-like text format.
//! let circuit = Circuit::parse(
//!     "H 0\nCX 0 1\nCX 1 2\nX_ERROR(0.1) 0 1 2\nM 0 1 2\n",
//! )?;
//!
//! // Initialization: one traversal; Sampling: a per-chunk F₂ product.
//! let cfg = SimConfig::new().with_seed(42);
//! let sampler = build_sampler(&circuit, &cfg)?;
//!
//! // Stream 10k shots as packed binary into any io::Write.
//! let mut bytes = Vec::new();
//! let mut sink = SampleFormat::B8.sink(&mut bytes, RecordSource::Measurements);
//! sampler.sample_to(10_000, cfg.seed(), &mut *sink)?;
//! drop(sink);
//! assert_eq!(bytes.len(), 10_000); // 3 measurements pack into 1 byte/shot
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod backend;
pub mod cli;

pub use symphase_analysis as analysis;
pub use symphase_backend as sampler_api;
pub use symphase_bitmat as bitmat;
pub use symphase_circuit as circuit;
pub use symphase_core as core;
pub use symphase_frame as frame;
pub use symphase_serve as serve;
pub use symphase_statevec as statevec;
pub use symphase_tableau as tableau;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::backend::build_sampler;
    pub use symphase_backend::formats::{RecordSource, SampleFormat};
    pub use symphase_backend::{
        BuildError, CollectSink, EngineKind, PhaseRepr, SampleBatch, Sampler, SamplingMethod,
        ShotSink, ShotSpec, SimConfig,
    };
    pub use symphase_bitmat::{BitMatrix, BitVec};
    pub use symphase_circuit::{Circuit, Gate, Instruction, NoiseChannel, PauliKind};
    pub use symphase_core::{SymExpr, SymPhaseSampler};
    pub use symphase_frame::FrameSampler;
    pub use symphase_statevec::StateVecSampler;
    pub use symphase_tableau::{reference_sample, TableauSampler, TableauSimulator};
}
