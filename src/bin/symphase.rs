//! The `symphase` CLI binary: sample, analyze, and extract error models
//! from stabilizer circuits in the Stim-like text format.
//!
//! Sample output is streamed to stdout (or `--out` files) chunk by chunk
//! through `symphase::cli::run_to` — the process never holds a full shot
//! transcript in memory.

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    match symphase::cli::run_to(&args, &mut out) {
        Ok(()) => {
            // A broken pipe at the final flush is a success: the reader
            // (`| head`, a closed pager) finished first — exit 0 quietly,
            // matching the streaming paths in `cli::run_to`.
            if let Err(e) = out.flush() {
                if e.kind() != std::io::ErrorKind::BrokenPipe {
                    eprintln!("error: writing stdout: {e}");
                    std::process::exit(1);
                }
            }
        }
        Err(e) => {
            if e.code == 0 {
                print!("{e}");
            } else {
                let _ = out.flush();
                eprintln!("error: {e}");
            }
            std::process::exit(e.code);
        }
    }
}
