//! The `symphase` CLI binary: sample, analyze, and extract error models
//! from stabilizer circuits in the Stim-like text format.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match symphase::cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            if e.code == 0 {
                print!("{e}");
            } else {
                eprintln!("error: {e}");
            }
            std::process::exit(e.code);
        }
    }
}
