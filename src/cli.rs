//! The `symphase` command-line interface.
//!
//! A Stim-like CLI over the circuit text format:
//!
//! ```text
//! symphase sample    -c circuit.stim --shots 1000 [--format 01|counts|b8|hits] [--out F] [--seed N] [--engine E] [--sampling S] [--par|--threads T]
//! symphase detect    -c circuit.stim --shots 1000 [--format 01|counts|b8|hits|dets] [--out F] [--obs-out F] [--seed N] [--engine E] [--sampling S] [--par|--threads T]
//! symphase analyze   -c circuit.stim
//! symphase stats     -c circuit.stim
//! symphase dem       -c circuit.stim
//! symphase reference -c circuit.stim
//! symphase gen surface-code --distance 3 --rounds 100000 [--data-error p] [--measure-error p]
//! ```
//!
//! `sample` and `detect` **stream**: shots flow from the engine to the
//! output writer one chunk at a time through the [`ShotSink`] layer, so
//! memory stays `O(chunk)` however many shots are requested — a billion
//! shots to a `b8` file never holds more than one chunk in memory. (The
//! one exception is `--format counts`, which by design accumulates one
//! counter per *distinct* observed bit pattern; on high-entropy records
//! that can approach one entry per shot.)
//! `--out` writes to a file instead of stdout; `--obs-out` splits the
//! observable stream of `detect` into its own file. The output formats
//! (`01`, `counts`, `b8`, `hits`, `dets`) are specified in
//! `docs/formats.md`.
//!
//! Sampling is always chunk-seeded: `--seed N` fixes the output
//! bit-for-bit, and `--par` / `--threads T` only change how chunks are
//! drawn, never what the output contains.
//!
//! Option values are validated **before** the circuit is loaded, and exit
//! codes distinguish failure classes: `2` for usage errors (unknown
//! option, bad format/engine/sampling name), `1` for runtime errors
//! (unreadable file, parse error, circuit/engine mismatch, I/O failure),
//! `0` for `--help`.
//!
//! `stats` parses and prints structural statistics only — because
//! `REPEAT` blocks are first-class IR nodes, this is O(file) even for a
//! circuit whose flattened form would hold billions of instructions.
//! `gen` emits the built-in QEC memory workloads (with structured
//! `REPEAT` rounds) as circuit text.
//!
//! The logic lives here (rather than in `main`) so the test suite can run
//! commands in-process.

use std::fmt::Write as _;
use std::io::{self, Write};

use symphase_backend::formats::{RecordSource, SampleFormat};
use symphase_backend::{FanoutSink, Sampler, ShotSink, SimConfig};
use symphase_circuit::Circuit;
use symphase_core::SymPhaseSampler;
use symphase_tableau::reference_sample;

use crate::backend::build_sampler;

/// A CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable description.
    pub message: String,
    /// Process exit code: `2` for usage errors, `1` for runtime errors,
    /// `0` for `--help`.
    pub code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// A usage error (exit code 2): the invocation itself is malformed.
fn fail(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
        code: 2,
    }
}

/// A runtime error (exit code 1): a well-formed invocation that failed
/// against its inputs (file, circuit, engine, output writer).
fn fail_run(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
        code: 1,
    }
}

/// Usage text.
pub const USAGE: &str = "\
usage: symphase <command> [options]

commands:
  sample     sample measurement records        (--shots, --seed, --format, --out, --engine, --par)
  detect     sample detectors and observables  (--shots, --seed, --format, --out, --obs-out, --engine, --par)
  analyze    print circuit statistics, symbolic expressions, and the
             DEM-level analysis: detector-hypergraph lints (SP012..SP014)
             and a verified bounded circuit-distance search (SP015)
             (--dem <file>, --max-weight <k>, --format text|json, --deny)
  lint       run the static analyzer (--format text|json, --deny <code|warnings>)
  opt        run the verified optimizer and print the optimized circuit
             (--passes strip,fuse,propagate; --stats; --format text|json)
  stats      print structural statistics only (O(file), REPEAT never expanded)
  dem        print the detector error model
  reference  print the noiseless reference sample
  gen        emit a generated circuit: surface-code, repetition-code, or
             phase-memory (--distance, --rounds, --data-error,
             --measure-error, --basis, --pair-error)
  hash       print the canonical content hash of a circuit file (the
             serve cache key; whitespace/comment-equivalent files match)
  serve      run the sampling daemon (--addr, --workers, --max-queue,
             --cache-size, --threads, --optimize, --lint) — docs/serve.md
  request    query a running daemon (--addr, -c|--hash, --shots|--range,
             --seed, --engine, --source, --format, --out, --stats)

options:
  -c, --circuit <path>   circuit file in the Stim-like text format ('-' = stdin)
      --shots <n>        number of samples (default 10; 0 is valid and emits empty output)
      --seed <n>         RNG seed (default 0); output is bit-identical per seed,
                         serial or parallel
      --format <f>       sample output: 01 (default), counts, b8 (packed binary),
                         hits, or dets (detect only) — see docs/formats.md;
                         lint output: text (default) or json
      --deny <c>         lint/analyze: treat diagnostic code <c> (e.g. SP001) —
                         or all warnings with '--deny warnings' — as errors
                         (exit 1); repeatable
      --dem <path>       analyze: read a detector error model file instead of
                         extracting one from a circuit (fault sets are then
                         reported unverified — no circuit to inject into)
      --max-weight <k>   analyze: distance-search weight cap (default 5);
                         finding nothing certifies distance > k
      --passes <list>    opt: comma-separated pass list run per fixpoint round
                         (default strip,fuse,propagate)
      --stats            opt: append the optimizer report (gates before/after,
                         per-pass counts, proof outcomes) as # comment lines
      --out <path>       stream sample output to a file instead of stdout
      --obs-out <path>   detect: stream observables to their own file (the main
                         output then carries detectors only)
      --engine <e>       backend: symphase (default), symphase-sparse,
                         symphase-dense, frame, tableau, or statevec
      --sampling <s>     M·B strategy for symphase engines: auto (default),
                         hybrid, sparse, or dense (blocked kernel); all
                         strategies sample identical bits for equal seeds
      --par              sample across all cores (chunks stream in order)
      --threads <t>      sample across exactly t threads (1 = serial)
      --distance <d>     gen: code distance (default 3)
      --rounds <r>       gen: stabilizer measurement rounds (default 3)
      --data-error <p>   gen: per-round data noise strength (default 0.001)
      --measure-error <p> gen: pre-measurement flip strength (default 0.001)
      --basis <z|x>      gen surface-code: protected memory basis (default z;
                         x initializes RX and reads out MX)
      --pair-error <p>   gen phase-memory: per-round correlated Z⊗Z-pair
                         chain strength (E/ELSE_CORRELATED_ERROR; default 0)
      --addr <host:port> serve: address to listen on; request: daemon to query
      --workers <n>      serve: worker threads handling requests (default 2)
      --max-queue <n>    serve: queued connections before BUSY (default 32)
      --cache-size <n>   serve: circuits kept initialized in the LRU cache
                         (default 64)
      --optimize         serve: run the verified optimizer once per circuit
                         before caching its sampler
      --lint             serve: reject circuits with lint findings (typed
                         Lint error frame carries the diagnostics)
      --hash <hex>       request: name the circuit by content hash instead of
                         sending its text (see 'symphase hash')
      --range <s:e>      request: shot range [s, e) of an e-shot run; s must
                         be a multiple of the server chunk width (4096).
                         Default 0:<--shots>
      --source <r>       request: record rows to stream — m (default), d, l,
                         or dl (detectors+observables)
      --stats            request: print the daemon's cache/queue counters

exit codes: 0 success/help, 1 runtime error, 2 usage error
";

/// Parsed command-line options.
#[derive(Debug, Default)]
struct Options {
    command: String,
    /// Bare (non-flag) arguments after the command, e.g. the generator
    /// name for `gen`.
    positional: Vec<String>,
    circuit_path: Option<String>,
    dem_path: Option<String>,
    max_weight: Option<usize>,
    shots: usize,
    seed: u64,
    format: String,
    deny: Vec<String>,
    passes: Option<String>,
    stats: bool,
    out: Option<String>,
    obs_out: Option<String>,
    engine: String,
    sampling: String,
    parallel: bool,
    threads: Option<usize>,
    distance: usize,
    rounds: usize,
    data_error: f64,
    // Generator-specific flags stay `None` until the user passes them, so
    // `gen` can reject flags the chosen generator does not understand
    // instead of silently ignoring them.
    measure_error: Option<f64>,
    basis: Option<String>,
    pair_error: Option<f64>,
    addr: Option<String>,
    workers: Option<usize>,
    max_queue: Option<usize>,
    cache_size: Option<usize>,
    optimize: bool,
    lint_gate: bool,
    hash: Option<String>,
    range: Option<String>,
    source: Option<String>,
}

impl Options {
    /// The thread budget the streaming layer sees: `--threads` wins, then
    /// `--par` (0 = all cores), else serial.
    fn effective_threads(&self) -> usize {
        match self.threads {
            Some(t) => t,
            None if self.parallel => 0,
            None => 1,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, CliError> {
    let mut opts = Options {
        shots: 10,
        format: "01".into(),
        engine: "symphase".into(),
        sampling: "auto".into(),
        distance: 3,
        rounds: 3,
        data_error: 0.001,
        ..Options::default()
    };
    let mut it = args.iter();
    opts.command = it.next().cloned().ok_or_else(|| fail(USAGE))?;
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, CliError> {
            it.next()
                .cloned()
                .ok_or_else(|| fail(format!("{name} needs a value")))
        };
        match a.as_str() {
            "-c" | "--circuit" => opts.circuit_path = Some(value("--circuit")?),
            "--dem" => opts.dem_path = Some(value("--dem")?),
            "--max-weight" => {
                opts.max_weight = Some(
                    value("--max-weight")?
                        .parse()
                        .map_err(|_| fail("--max-weight must be an integer"))?,
                );
            }
            "--shots" => {
                opts.shots = value("--shots")?
                    .parse()
                    .map_err(|_| fail("--shots must be an integer"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| fail("--seed must be an integer"))?;
            }
            "--format" => opts.format = value("--format")?,
            "--deny" => opts.deny.push(value("--deny")?),
            "--passes" => opts.passes = Some(value("--passes")?),
            "--stats" => opts.stats = true,
            "--out" => opts.out = Some(value("--out")?),
            "--obs-out" => opts.obs_out = Some(value("--obs-out")?),
            "--engine" => opts.engine = value("--engine")?,
            "--sampling" => opts.sampling = value("--sampling")?,
            "--par" => opts.parallel = true,
            "--threads" => {
                let t: usize = value("--threads")?
                    .parse()
                    .map_err(|_| fail("--threads must be an integer"))?;
                if t == 0 {
                    return Err(fail(
                        "--threads must be at least 1 (use --par for all cores)",
                    ));
                }
                opts.threads = Some(t);
            }
            "--distance" => {
                opts.distance = value("--distance")?
                    .parse()
                    .map_err(|_| fail("--distance must be an integer"))?;
            }
            "--rounds" => {
                opts.rounds = value("--rounds")?
                    .parse()
                    .map_err(|_| fail("--rounds must be an integer"))?;
            }
            "--data-error" => {
                opts.data_error = value("--data-error")?
                    .parse()
                    .map_err(|_| fail("--data-error must be a probability"))?;
            }
            "--measure-error" => {
                opts.measure_error = Some(
                    value("--measure-error")?
                        .parse()
                        .map_err(|_| fail("--measure-error must be a probability"))?,
                );
            }
            "--basis" => opts.basis = Some(value("--basis")?),
            "--pair-error" => {
                opts.pair_error = Some(
                    value("--pair-error")?
                        .parse()
                        .map_err(|_| fail("--pair-error must be a probability"))?,
                );
            }
            "--addr" => opts.addr = Some(value("--addr")?),
            "--workers" => {
                opts.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| fail("--workers must be an integer"))?,
                );
            }
            "--max-queue" => {
                opts.max_queue = Some(
                    value("--max-queue")?
                        .parse()
                        .map_err(|_| fail("--max-queue must be an integer"))?,
                );
            }
            "--cache-size" => {
                opts.cache_size = Some(
                    value("--cache-size")?
                        .parse()
                        .map_err(|_| fail("--cache-size must be an integer"))?,
                );
            }
            "--optimize" => opts.optimize = true,
            "--lint" => opts.lint_gate = true,
            "--hash" => opts.hash = Some(value("--hash")?),
            "--range" => opts.range = Some(value("--range")?),
            "--source" => opts.source = Some(value("--source")?),
            "-h" | "--help" => {
                return Err(CliError {
                    message: USAGE.into(),
                    code: 0,
                })
            }
            other if !other.starts_with('-') => {
                // Only `gen` takes a bare argument (the generator name);
                // anywhere else a bare token is a mistake (e.g. a value
                // whose flag was dropped) and must not be swallowed.
                if opts.command == "gen" && opts.positional.is_empty() {
                    opts.positional.push(other.to_string());
                } else {
                    return Err(fail(format!("unexpected argument '{other}'\n{USAGE}")));
                }
            }
            other => return Err(fail(format!("unknown option '{other}'\n{USAGE}"))),
        }
    }
    Ok(opts)
}

/// Validates the sampling-related option *values* — format, engine,
/// sampling method, thread budget — into a [`SimConfig`] plus format.
/// This runs **before** the circuit is loaded, so a typo in `--format`
/// fails in microseconds, not after drawing a million shots.
fn sampling_config(
    opts: &Options,
    for_detect: bool,
) -> Result<(SimConfig, SampleFormat), CliError> {
    let format = SampleFormat::from_name(&opts.format).ok_or_else(|| {
        let names: Vec<&str> = SampleFormat::ALL.iter().map(|f| f.name()).collect();
        fail(format!(
            "unknown format '{}' (expected one of: {})",
            opts.format,
            names.join(", ")
        ))
    })?;
    if format == SampleFormat::Dets && !for_detect {
        return Err(fail(
            "--format dets is the detector/observable flavor: it only applies to 'detect'",
        ));
    }
    let cfg = SimConfig::new()
        .with_engine_name(&opts.engine)
        .map_err(|e| fail(e.to_string()))?
        .with_sampling_name(&opts.sampling)
        .map_err(|e| fail(e.to_string()))?
        .with_seed(opts.seed)
        .with_threads(opts.effective_threads());
    cfg.validate().map_err(|e| fail(e.to_string()))?;
    Ok((cfg, format))
}

/// Reads the `--circuit` file (or stdin for `-`) as raw text — the one
/// loader every command shares, so `lint` and `opt` see the same bytes
/// and can share the `parse_with_sources` line mapping.
fn read_circuit_text(opts: &Options) -> Result<String, CliError> {
    let path = opts
        .circuit_path
        .as_deref()
        .ok_or_else(|| fail("missing --circuit"))?;
    if path == "-" {
        use std::io::Read;
        let mut buf = String::new();
        io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| fail_run(format!("reading stdin: {e}")))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| fail_run(format!("reading {path}: {e}")))
    }
}

fn load_circuit(opts: &Options) -> Result<Circuit, CliError> {
    let text = read_circuit_text(opts)?;
    Circuit::parse(&text).map_err(|e| fail_run(format!("parse error: {e}")))
}

/// Runs a CLI invocation, streaming its stdout content into `out`.
///
/// This is the binary's entry point: `sample`/`detect` write shots to
/// `out` (or `--out` files) chunk by chunk — never a full in-memory
/// transcript.
///
/// # Errors
///
/// Returns a [`CliError`] with a message and exit code on bad usage
/// (code 2), I/O failure, parse errors, or construction failures
/// (code 1).
pub fn run_to(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = parse_args(args)?;
    match opts.command.as_str() {
        "sample" => cmd_sample(&opts, out),
        "detect" => cmd_detect(&opts, out),
        "analyze" => cmd_analyze(&opts, out),
        "lint" => cmd_lint(&opts, out),
        "opt" => cmd_opt(&opts, out),
        "stats" => write_str(out, &cmd_stats(&opts)?),
        "dem" => write_str(out, &cmd_dem(&opts)?),
        "reference" => write_str(out, &cmd_reference(&opts)?),
        "gen" => write_str(out, &cmd_gen(&opts)?),
        "hash" => write_str(out, &cmd_hash(&opts)?),
        "serve" => cmd_serve(&opts, out),
        "request" => cmd_request(&opts, out),
        other => Err(fail(format!("unknown command '{other}'\n{USAGE}"))),
    }
}

/// Runs a CLI invocation and returns its raw stdout bytes (the in-process
/// test harness; binary formats like `b8` need this entry point).
pub fn run_bytes(args: &[String]) -> Result<Vec<u8>, CliError> {
    let mut out = Vec::new();
    run_to(args, &mut out)?;
    Ok(out)
}

/// Runs a CLI invocation and returns its stdout content as text.
///
/// # Errors
///
/// Returns a [`CliError`] with a message and exit code on bad usage, I/O
/// failure, or parse errors.
///
/// # Panics
///
/// Panics if the output is not UTF-8 (use [`run_bytes`] for the binary
/// `b8` format).
pub fn run(args: &[String]) -> Result<String, CliError> {
    Ok(String::from_utf8(run_bytes(args)?).expect("non-binary output is UTF-8"))
}

/// Maps a write-path failure to a [`CliError`] — except a broken pipe,
/// which is a *success*: the reader (`| head`, a closed pager) decided it
/// had enough, and the Unix contract is to stop quietly with exit 0, not
/// to panic or report an error.
fn map_write_err(e: io::Error, what: &str) -> Result<(), CliError> {
    if e.kind() == io::ErrorKind::BrokenPipe {
        Ok(())
    } else {
        Err(fail_run(format!("{what}: {e}")))
    }
}

fn write_str(out: &mut dyn Write, s: &str) -> Result<(), CliError> {
    match out.write_all(s.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) => map_write_err(e, "writing output"),
    }
}

/// Streams `shots` chunk-seeded shots from `sampler` into `sink`,
/// honoring the configured seed, thread budget, and chunk width. A broken
/// output pipe ends the stream early and successfully (`… | head`).
fn stream(
    sampler: &dyn Sampler,
    opts: &Options,
    cfg: &SimConfig,
    sink: &mut dyn ShotSink,
) -> Result<(), CliError> {
    match symphase_backend::sink::stream_with_config(sampler, opts.shots, cfg, sink) {
        Ok(()) => Ok(()),
        Err(e) => map_write_err(e, "writing samples"),
    }
}

/// Opens `--out`-style path as a buffered writer, or borrows `stdout`.
fn open_out<'a>(
    path: Option<&str>,
    stdout: &'a mut dyn Write,
) -> Result<Box<dyn Write + 'a>, CliError> {
    match path {
        Some(p) => {
            let f = std::fs::File::create(p).map_err(|e| fail_run(format!("creating {p}: {e}")))?;
            Ok(Box::new(io::BufWriter::new(f)))
        }
        None => Ok(Box::new(stdout)),
    }
}

fn cmd_sample(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    // Option values first — a bad --format must fail before any
    // circuit loading or sampling happens.
    let (cfg, format) = sampling_config(opts, false)?;
    if opts.obs_out.is_some() {
        return Err(fail("--obs-out only applies to 'detect'"));
    }
    let circuit = load_circuit(opts)?;
    let sampler = build_sampler(&circuit, &cfg).map_err(|e| fail_run(e.to_string()))?;
    let mut w = open_out(opts.out.as_deref(), out)?;
    let mut sink = format.sink(&mut *w, RecordSource::Measurements);
    stream(sampler.as_ref(), opts, &cfg, &mut *sink)
}

fn cmd_detect(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let (cfg, format) = sampling_config(opts, true)?;
    let circuit = load_circuit(opts)?;
    let sampler = build_sampler(&circuit, &cfg).map_err(|e| fail_run(e.to_string()))?;
    let mut w = open_out(opts.out.as_deref(), out)?;
    match opts.obs_out.as_deref() {
        None => {
            // One combined stream: detectors then observables.
            let mut sink = format.sink(&mut *w, RecordSource::DetectorsAndObservables);
            stream(sampler.as_ref(), opts, &cfg, &mut *sink)
        }
        Some(obs_path) => {
            // Observables split into their own file; one sampling pass
            // feeds both sinks through a fan-out.
            let obs_file = std::fs::File::create(obs_path)
                .map_err(|e| fail_run(format!("creating {obs_path}: {e}")))?;
            let mut obs_w = io::BufWriter::new(obs_file);
            let mut det_sink = format.sink(&mut *w, RecordSource::Detectors);
            let mut obs_sink = format.sink(&mut obs_w, RecordSource::Observables);
            let mut fanout = FanoutSink::new(vec![&mut *det_sink, &mut *obs_sink]);
            stream(sampler.as_ref(), opts, &cfg, &mut fanout)
        }
    }
}

/// `lint`: run the static analyzer over a circuit file.
///
/// Findings go to stdout (or `--out`); the exit code reports the worst
/// severity *after* `--deny` escalation: `0` when everything surviving is
/// a warning, `1` when any error-severity finding remains (parse errors
/// always are; `--deny SP001` / `--deny warnings` promote findings).
/// Option values are validated before the circuit is read, matching the
/// rest of the CLI.
fn cmd_lint(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    // "01" is the global default; lint renders text unless asked for json.
    let json = match opts.format.as_str() {
        "01" | "text" => false,
        "json" => true,
        other => {
            return Err(fail(format!(
                "unknown lint format '{other}' (expected text or json)"
            )))
        }
    };
    for d in &opts.deny {
        if d != "warnings" && !symphase_analysis::is_known_code(d) {
            return Err(fail(format!(
                "--deny takes 'warnings' or a diagnostic code (SP000..SP015), got '{d}'"
            )));
        }
    }

    let text = read_circuit_text(opts)?;

    let deny_all = opts.deny.iter().any(|d| d == "warnings");
    let mut diags = symphase_analysis::lint_text(&text);
    // The DEM-level findings (SP012..SP015) join the stream whenever the
    // circuit parses; they carry no source line and sort last. SP015 is
    // kept only at weight 1 — a logical observable flipped by a single
    // undetected fault is a coverage bug, while any higher weight is the
    // ordinary finite code distance, reported by `analyze`, not lint.
    if !diags
        .iter()
        .any(|d| d.severity == symphase_analysis::Severity::Error)
    {
        if let Ok(circuit) = Circuit::parse(&text) {
            diags.extend(
                symphase_analysis::analyze_dem(&circuit)
                    .into_iter()
                    .filter(|d| {
                        d.code != "SP015"
                            || matches!(
                                d.payload,
                                Some(symphase_analysis::Payload::FaultSet { weight: 1, .. })
                            )
                    }),
            );
        }
    }
    for d in &mut diags {
        if deny_all || opts.deny.iter().any(|c| c == d.code) {
            d.severity = symphase_analysis::Severity::Error;
        }
    }

    let rendered = if json {
        symphase_analysis::render_json(&diags)
    } else {
        symphase_analysis::render_text(&diags)
    };
    let mut w = open_out(opts.out.as_deref(), out)?;
    w.write_all(rendered.as_bytes())
        .map_err(|e| fail_run(format!("writing output: {e}")))?;
    w.flush()
        .map_err(|e| fail_run(format!("writing output: {e}")))?;
    drop(w);

    let errors = diags
        .iter()
        .filter(|d| d.severity == symphase_analysis::Severity::Error)
        .count();
    if errors > 0 {
        return Err(fail_run(format!(
            "lint found {errors} error-severity finding{}",
            if errors == 1 { "" } else { "s" }
        )));
    }
    Ok(())
}

/// `opt`: run the verified optimizer and print the optimized circuit.
///
/// The default output is the optimized circuit text (which round-trips
/// through `Circuit::parse`). `--stats` appends the optimizer report as
/// `#` comment lines, so the output stays parseable; `--format json`
/// emits a JSON object with the report, proof outcomes, sign-flipped
/// records, and the circuit text. The parse shares `lint`'s
/// `parse_with_sources` path, so rollback diagnostics resolve source
/// lines the same way lint findings do; an unparsable file exits 1 with
/// the same `SP000`-classified error `lint` would report.
fn cmd_opt(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    use symphase_analysis::{optimize_with, OptConfig, Pass, ProofStatus};

    let json = match opts.format.as_str() {
        "01" | "text" => false,
        "json" => true,
        other => {
            return Err(fail(format!(
                "unknown opt format '{other}' (expected text or json)"
            )))
        }
    };
    let config = match opts.passes.as_deref() {
        None => OptConfig::default(),
        Some(list) => {
            let mut passes = Vec::new();
            for name in list.split(',').filter(|s| !s.is_empty()) {
                passes.push(Pass::from_name(name).ok_or_else(|| {
                    fail(format!(
                        "--passes takes a comma-separated list of strip, fuse, propagate; \
                         got '{name}'"
                    ))
                })?);
            }
            if passes.is_empty() {
                return Err(fail("--passes needs at least one pass"));
            }
            OptConfig { passes }
        }
    };

    let text = read_circuit_text(opts)?;
    let (circuit, sources) = match Circuit::parse_with_sources(&text) {
        Ok(parsed) => parsed,
        Err(_) => {
            // Same classification and rendering lint gives the file.
            let diags = symphase_analysis::lint_text(&text);
            let mut w = open_out(opts.out.as_deref(), out)?;
            write!(w, "{}", symphase_analysis::render_text(&diags))
                .map_err(|e| fail_run(format!("writing output: {e}")))?;
            w.flush()
                .map_err(|e| fail_run(format!("writing output: {e}")))?;
            drop(w);
            return Err(fail_run("opt: the circuit does not parse"));
        }
    };

    let mut result = optimize_with(&circuit, &config);
    for d in &mut result.diagnostics {
        d.line = sources.line_at(&d.path);
    }

    let rendered =
        if json {
            render_opt_json(&result)
        } else {
            let mut s = result.circuit.to_string();
            if opts.stats {
                let r = &result.report;
                let _ =
                    writeln!(
                s,
                "# opt: gates {} -> {}, noise sites {} -> {}, {} measurement(s), {} round(s)",
                r.gates_before, r.gates_after, r.noise_sites_before, r.noise_sites_after,
                r.measurements, r.rounds,
            );
                for p in &r.passes {
                    let _ = writeln!(
                        s,
                        "# opt: pass {}: {} applied, {} rolled back, {} gate(s) removed, \
                     {} noise site(s) removed, {} sign flip(s)",
                        p.pass,
                        p.applications,
                        p.rollbacks,
                        p.gates_removed,
                        p.noise_sites_removed,
                        p.sign_flips,
                    );
                }
                let verified = result
                    .proof
                    .iter()
                    .filter(|p| matches!(p.status, ProofStatus::Verified { .. }))
                    .count();
                let _ = writeln!(
                    s,
                    "# opt: {} rewrite proof(s) discharged, {} rolled back",
                    verified,
                    result.proof.len() - verified,
                );
                if !result.flipped_records.is_empty() {
                    let _ = writeln!(
                        s,
                        "# opt: sign-flipped measurement record(s): {}",
                        result
                            .flipped_records
                            .iter()
                            .map(|r| r.to_string())
                            .collect::<Vec<_>>()
                            .join(" "),
                    );
                }
            }
            for d in &result.diagnostics {
                let _ = write!(
                    s,
                    "# {}",
                    symphase_analysis::render_text(std::slice::from_ref(d))
                );
            }
            s
        };
    let mut w = open_out(opts.out.as_deref(), out)?;
    w.write_all(rendered.as_bytes())
        .map_err(|e| fail_run(format!("writing output: {e}")))?;
    w.flush()
        .map_err(|e| fail_run(format!("writing output: {e}")))
}

/// JSON rendering of an [`symphase_analysis::OptResult`] (stable field
/// order, hand-rolled like the lint renderer).
fn render_opt_json(result: &symphase_analysis::OptResult) -> String {
    use symphase_analysis::ProofStatus;
    let r = &result.report;
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"report\": {{\"gates_before\":{},\"gates_after\":{},\"noise_sites_before\":{},\
         \"noise_sites_after\":{},\"measurements\":{},\"rounds\":{}}},",
        r.gates_before,
        r.gates_after,
        r.noise_sites_before,
        r.noise_sites_after,
        r.measurements,
        r.rounds,
    );
    out.push_str("  \"passes\": [");
    for (i, p) in r.passes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ =
            write!(
            out,
            "\n    {{\"pass\":\"{}\",\"applications\":{},\"rollbacks\":{},\"gates_removed\":{},\
             \"noise_sites_removed\":{},\"sign_flips\":{}}}",
            p.pass, p.applications, p.rollbacks, p.gates_removed, p.noise_sites_removed,
            p.sign_flips,
        );
    }
    out.push_str("\n  ],\n  \"proof\": [");
    for (i, p) in result.proof.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (status, detail) = match &p.status {
            ProofStatus::Verified { clamped } => ("verified", format!("\"clamped\":{clamped}")),
            ProofStatus::RolledBack { reason } => {
                ("rolled-back", format!("\"reason\":{}", json_string(reason)))
            }
        };
        let _ = write!(
            out,
            "\n    {{\"pass\":\"{}\",\"round\":{},\"status\":\"{status}\",{detail},\"flips\":[{}]}}",
            p.pass,
            p.round,
            p.flips
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
    }
    let _ = writeln!(
        out,
        "\n  ],\n  \"flipped_records\": [{}],",
        result
            .flipped_records
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push_str("  \"diagnostics\": ");
    out.push_str(symphase_analysis::render_json(&result.diagnostics).trim_end());
    let _ = writeln!(
        out,
        ",\n  \"circuit\": {}\n}}",
        json_string(&result.circuit.to_string())
    );
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `analyze`: circuit statistics and symbolic expressions (as before),
/// plus the DEM-level analysis — detector-hypergraph census and lints
/// (`SP012`..`SP014`) and the bounded, fault-injection-verified
/// circuit-distance search (`SP015`). With `--dem FILE` the model is
/// parsed from a file instead of extracted, the circuit sections are
/// skipped, and fault sets are reported unverified.
fn cmd_analyze(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    use symphase_analysis::{
        analyze_circuit, analyze_model, render_json, render_text, AnalyzeConfig, Distance, Severity,
    };
    use symphase_core::DetectorErrorModel;

    let json = match opts.format.as_str() {
        "01" | "text" => false,
        "json" => true,
        other => {
            return Err(fail(format!(
                "unknown analyze format '{other}' (expected text or json)"
            )))
        }
    };
    for d in &opts.deny {
        if d != "warnings" && !symphase_analysis::is_known_code(d) {
            return Err(fail(format!(
                "--deny takes 'warnings' or a diagnostic code (SP000..SP015), got '{d}'"
            )));
        }
    }
    let config = AnalyzeConfig {
        max_weight: opts
            .max_weight
            .unwrap_or(AnalyzeConfig::default().max_weight),
        ..AnalyzeConfig::default()
    };

    let mut text = String::new();
    let report = if let Some(path) = &opts.dem_path {
        if opts.circuit_path.is_some() {
            return Err(fail("--dem and --circuit are mutually exclusive"));
        }
        let dem_text =
            std::fs::read_to_string(path).map_err(|e| fail_run(format!("reading {path}: {e}")))?;
        let dem =
            DetectorErrorModel::parse(&dem_text).map_err(|e| fail_run(format!("{path}: {e}")))?;
        analyze_model(dem, &config).map_err(fail_run)?
    } else {
        let circuit = load_circuit(opts)?;
        let report = analyze_circuit(&circuit, &config).map_err(fail_run)?;
        if !json {
            let stats = circuit.stats();
            let _ = writeln!(text, "qubits:        {}", circuit.num_qubits());
            let _ = writeln!(text, "gates:         {}", stats.gates);
            let _ = writeln!(text, "measurements:  {}", stats.measurements);
            let _ = writeln!(text, "noise sites:   {}", stats.noise_sites);
            let _ = writeln!(text, "noise symbols: {}", stats.noise_symbols);
            let _ = writeln!(text, "detectors:     {}", circuit.num_detectors());
            let _ = writeln!(text, "observables:   {}", circuit.num_observables());
            if report.clamped {
                let _ = writeln!(
                    text,
                    "\n(symbolic expressions omitted: REPEAT counts were clamped for analysis)"
                );
            } else {
                let sampler = SymPhaseSampler::new(&circuit);
                let _ = writeln!(
                    text,
                    "coins:         {}",
                    sampler.symbol_table().num_coins()
                );
                let _ = writeln!(text, "\nmeasurement expressions:");
                for (m, e) in sampler.measurement_exprs().iter().enumerate() {
                    let _ = writeln!(text, "  m{m} = {e}");
                }
                if sampler.num_detectors() > 0 {
                    let _ = writeln!(text, "\ndetector expressions:");
                    for d in 0..sampler.num_detectors() {
                        let _ = writeln!(text, "  D{d} = {}", sampler.detector_expr(d));
                    }
                }
            }
        }
        report
    };

    let mut diags = report.diagnostics.clone();
    let deny_all = opts.deny.iter().any(|d| d == "warnings");
    for d in &mut diags {
        if deny_all || opts.deny.iter().any(|c| c == d.code) {
            d.severity = Severity::Error;
        }
    }

    let scope = if report.clamped {
        " [REPEAT-clamped circuit]"
    } else {
        ""
    };
    let dist_text = if report.withdrawn {
        format!(
            "distance: n/a (claim withdrawn: fault-injection verification failed; see {})",
            symphase_analysis::WITHDRAWN_CODE
        )
    } else {
        match &report.distance {
            Distance::UpperBound { fault_set } => {
                let mechs: Vec<String> =
                    fault_set.mechanisms.iter().map(|m| m.to_string()).collect();
                format!(
                    "distance: {} (minimum-weight undetectable logical error: mechanisms {}; {}){scope}",
                    fault_set.weight(),
                    mechs.join(" "),
                    if report.verified {
                        "verified by fault injection"
                    } else {
                        "unverified: no circuit to inject into"
                    },
                )
            }
            Distance::AboveWeight { max_weight } => format!(
                "distance: > {max_weight} (no undetectable logical error within weight {max_weight}){scope}"
            ),
            Distance::Clamped { completed_weight } => format!(
                "distance: > {completed_weight} (search clamped by node budget after exhausting \
                 weight {completed_weight}){scope}"
            ),
            Distance::NoObservables => {
                "distance: n/a (the model flips no logical observable)".to_string()
            }
        }
    };

    if json {
        let s = &report.summary;
        let dist_json = if report.withdrawn {
            "{\"kind\":\"withdrawn\"}".to_string()
        } else {
            match &report.distance {
                Distance::UpperBound { fault_set } => format!(
                    "{{\"kind\":\"upper-bound\",\"weight\":{},\"mechanisms\":[{}],\"observables\":[{}],\"verified\":{}}}",
                    fault_set.weight(),
                    fault_set
                        .mechanisms
                        .iter()
                        .map(|m| m.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                    fault_set
                        .observables
                        .iter()
                        .map(|o| o.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                    report.verified,
                ),
                Distance::AboveWeight { max_weight } => {
                    format!("{{\"kind\":\"above-weight\",\"max_weight\":{max_weight}}}")
                }
                Distance::Clamped { completed_weight } => format!(
                    "{{\"kind\":\"clamped\",\"completed_weight\":{completed_weight}}}"
                ),
                Distance::NoObservables => "{\"kind\":\"no-observables\"}".to_string(),
            }
        };
        let _ = writeln!(
            text,
            "{{\n  \"summary\":{{\"mechanisms\":{},\"graphlike\":{},\"hyperedges\":{},\"undecomposable\":{},\"disconnected\":{},\"dominated\":{}}},\n  \"clamped\":{},\n  \"distance\":{},\n  \"diagnostics\":{}}}",
            s.mechanisms,
            s.graphlike,
            s.hyperedges,
            s.undecomposable,
            s.disconnected,
            s.dominated,
            report.clamped,
            dist_json,
            render_json(&diags).trim_end(),
        );
    } else {
        let s = &report.summary;
        let _ = writeln!(text, "\ndetector error model:");
        let _ = writeln!(text, "  mechanisms:     {}", s.mechanisms);
        let _ = writeln!(text, "  graphlike:      {}", s.graphlike);
        let _ = writeln!(text, "  hyperedges:     {}", s.hyperedges);
        let _ = writeln!(text, "  undecomposable: {}", s.undecomposable);
        let _ = writeln!(text, "  disconnected:   {}", s.disconnected);
        let _ = writeln!(text, "  dominated:      {}", s.dominated);
        if !diags.is_empty() {
            let _ = writeln!(text, "\n{}", render_text(&diags).trim_end());
        }
        let _ = writeln!(text, "\n{dist_text}");
    }
    write_str(out, &text)?;

    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if errors > 0 {
        return Err(fail_run(format!(
            "analyze found {errors} error-severity finding{}",
            if errors == 1 { "" } else { "s" }
        )));
    }
    Ok(())
}

/// `stats`: parse + structural statistics, no engine initialization.
/// Because statistics are computed from the structured IR (`REPEAT`
/// bodies contribute `count ×` their one-iteration counts), this is
/// O(file) even when the flattened circuit would hold billions of
/// instructions — exactly the workloads the old flatten-on-parse cap
/// (50M instructions) used to reject.
fn cmd_stats(opts: &Options) -> Result<String, CliError> {
    let circuit = load_circuit(opts)?;
    let stats = circuit.stats();
    let mut out = String::new();
    let _ = writeln!(out, "qubits:        {}", circuit.num_qubits());
    let _ = writeln!(
        out,
        "instructions:  {} (structured)",
        circuit.instructions().len()
    );
    let _ = writeln!(out, "gates:         {}", stats.gates);
    let _ = writeln!(out, "measurements:  {}", stats.measurements);
    let _ = writeln!(out, "resets:        {}", stats.resets);
    let _ = writeln!(out, "noise sites:   {}", stats.noise_sites);
    let _ = writeln!(out, "noise symbols: {}", stats.noise_symbols);
    let _ = writeln!(out, "detectors:     {}", circuit.num_detectors());
    let _ = writeln!(out, "observables:   {}", circuit.num_observables());
    let _ = writeln!(out, "feedback ops:  {}", stats.feedback_ops);
    let _ = writeln!(
        out,
        "mean noise p:  {:.6}",
        circuit.mean_noise_probability()
    );
    Ok(out)
}

/// `gen`: emit a built-in QEC memory workload as circuit text (with
/// structured `REPEAT` rounds, so the output file is O(one round)).
fn cmd_gen(opts: &Options) -> Result<String, CliError> {
    use symphase_circuit::generators::{
        mpp_phase_memory, repetition_code_memory, surface_code_memory_in, MemoryBasis,
        PhaseMemoryConfig, RepetitionCodeConfig, SurfaceCodeConfig,
    };
    let name = opts.positional.first().ok_or_else(|| {
        fail("gen needs a generator name: surface-code, repetition-code, or phase-memory")
    })?;
    if opts.rounds == 0 {
        return Err(fail("--rounds must be at least 1"));
    }
    let prob = |flag: &str, p: f64| -> Result<f64, CliError> {
        if (0.0..=1.0).contains(&p) {
            Ok(p)
        } else {
            Err(fail(format!("{flag} must be in [0, 1], got {p}")))
        }
    };
    let data_error = prob("--data-error", opts.data_error)?;
    // A flag the chosen generator does not understand is a usage error,
    // not something to silently ignore.
    let reject = |flag: &str, set: bool| -> Result<(), CliError> {
        if set {
            Err(fail(format!(
                "{flag} does not apply to the '{name}' generator"
            )))
        } else {
            Ok(())
        }
    };
    let measure_error = prob("--measure-error", opts.measure_error.unwrap_or(0.001))?;
    let pair_error = prob("--pair-error", opts.pair_error.unwrap_or(0.0))?;
    let basis = match opts.basis.as_deref() {
        None | Some("z") => MemoryBasis::Z,
        Some("x") => MemoryBasis::X,
        Some(other) => return Err(fail(format!("--basis must be z or x, got '{other}'"))),
    };
    let circuit = match name.as_str() {
        "surface-code" => {
            reject("--pair-error", opts.pair_error.is_some())?;
            if opts.distance < 3 || opts.distance.is_multiple_of(2) {
                return Err(fail("--distance must be odd and at least 3"));
            }
            surface_code_memory_in(
                &SurfaceCodeConfig {
                    distance: opts.distance,
                    rounds: opts.rounds,
                    data_error,
                    measure_error,
                },
                basis,
            )
        }
        "repetition-code" => {
            reject("--basis", opts.basis.is_some())?;
            reject("--pair-error", opts.pair_error.is_some())?;
            if opts.distance < 2 {
                return Err(fail("--distance must be at least 2"));
            }
            repetition_code_memory(&RepetitionCodeConfig {
                distance: opts.distance,
                rounds: opts.rounds,
                data_error,
                measure_error,
            })
        }
        "phase-memory" => {
            reject("--basis", opts.basis.is_some())?;
            reject("--measure-error", opts.measure_error.is_some())?;
            if opts.distance < 2 {
                return Err(fail("--distance must be at least 2"));
            }
            mpp_phase_memory(&PhaseMemoryConfig {
                distance: opts.distance,
                rounds: opts.rounds,
                data_error,
                pair_error,
            })
        }
        other => {
            return Err(fail(format!(
                "unknown generator '{other}' \
                 (expected surface-code, repetition-code, or phase-memory)"
            )))
        }
    };
    Ok(circuit.to_string())
}

fn cmd_dem(opts: &Options) -> Result<String, CliError> {
    let circuit = load_circuit(opts)?;
    let sampler = SymPhaseSampler::new(&circuit);
    Ok(sampler
        .detector_error_model()
        .with_detector_coords(circuit.detector_coordinates())
        .to_string())
}

fn cmd_reference(opts: &Options) -> Result<String, CliError> {
    let circuit = load_circuit(opts)?;
    let r = reference_sample(&circuit);
    let mut out: String = (0..r.len())
        .map(|m| if r.get(m) { '1' } else { '0' })
        .collect();
    out.push('\n');
    Ok(out)
}

/// `hash`: print the canonical content hash a serve cache would key this
/// circuit on — SHA-256 of the parsed circuit's canonical `Display` form,
/// so whitespace/comment-equivalent files print the same hash.
fn cmd_hash(opts: &Options) -> Result<String, CliError> {
    let circuit = load_circuit(opts)?;
    Ok(format!("{}\n", symphase_serve::circuit_hash(&circuit)))
}

/// `request --source` values.
fn parse_source(source: Option<&str>) -> Result<RecordSource, CliError> {
    match source.unwrap_or("m") {
        "m" | "measurements" => Ok(RecordSource::Measurements),
        "d" | "detectors" => Ok(RecordSource::Detectors),
        "l" | "observables" => Ok(RecordSource::Observables),
        "dl" | "detectors+observables" => Ok(RecordSource::DetectorsAndObservables),
        other => Err(fail(format!(
            "unknown --source '{other}' (expected m, d, l, or dl)"
        ))),
    }
}

/// `serve`: run the sampling daemon until the process is killed.
///
/// The per-request sampling budget defaults to **all cores** (`--threads`
/// overrides), unlike the offline commands which default to serial: a
/// daemon exists to saturate the machine. Everything else a request needs
/// (engine, seed, format, range) arrives on the wire; see docs/serve.md.
fn cmd_serve(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    use symphase_serve::{ServeOptions, Server};
    let addr = opts
        .addr
        .as_deref()
        .ok_or_else(|| fail("serve needs --addr <host:port>"))?;
    let mut options = ServeOptions::default();
    if let Some(w) = opts.workers {
        if w == 0 {
            return Err(fail("--workers must be at least 1"));
        }
        options.workers = w;
    }
    if let Some(q) = opts.max_queue {
        if q == 0 {
            return Err(fail("--max-queue must be at least 1"));
        }
        options.max_queue = q;
    }
    if let Some(c) = opts.cache_size {
        if c == 0 {
            return Err(fail("--cache-size must be at least 1"));
        }
        options.cache_capacity = c;
    }
    options.threads = opts.threads.unwrap_or(0);
    options.optimize = opts.optimize;
    let factory: symphase_serve::SamplerFactory = std::sync::Arc::new(build_sampler);
    let lint: Option<symphase_serve::LintGate> = opts.lint_gate.then(|| {
        std::sync::Arc::new(|circuit: &Circuit| {
            let diags = symphase_analysis::lint(circuit);
            if diags.is_empty() {
                Ok(())
            } else {
                Err(symphase_analysis::render_text(&diags))
            }
        }) as symphase_serve::LintGate
    });
    let server = Server::bind(addr, options, factory, lint)
        .map_err(|e| fail_run(format!("binding {addr}: {e}")))?;
    // Announce readiness on stdout (flushed) so scripts can wait for it.
    write_str(out, &format!("serving on {}\n", server.local_addr()))?;
    let _ = out.flush();
    server.run().map_err(|e| fail_run(format!("serve: {e}")))
}

/// `request`: one round-trip against a running daemon — a shot range
/// (payload bytes to stdout or `--out`, byte-identical to the offline
/// CLI), or `--stats` counters.
fn cmd_request(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    use symphase_serve::{request_sample, request_stats, CircuitRef, SampleRequest};
    let addr = opts
        .addr
        .as_deref()
        .ok_or_else(|| fail("request needs --addr <host:port>"))?;
    if opts.stats {
        let s = request_stats(addr).map_err(|e| fail_run(e.to_string()))?;
        return write_str(
            out,
            &format!(
                "hits {}\nmisses {}\nentries {}\nserved {}\nbusy {}\n",
                s.hits, s.misses, s.entries, s.served, s.busy
            ),
        );
    }
    // Validates format/engine names before any connection is made.
    let (cfg, format) = sampling_config(opts, true)?;
    let source = parse_source(opts.source.as_deref())?;
    let (start, end) = match opts.range.as_deref() {
        None => (0, opts.shots as u64),
        Some(r) => {
            let parsed = r.split_once(':').and_then(|(s, e)| {
                Some((s.trim().parse::<u64>().ok()?, e.trim().parse::<u64>().ok()?))
            });
            parsed.ok_or_else(|| fail("--range must be <start>:<end> (shot indices)"))?
        }
    };
    let circuit = match (&opts.hash, &opts.circuit_path) {
        (Some(_), Some(_)) => {
            return Err(fail("--hash and --circuit are mutually exclusive"));
        }
        (Some(h), None) => CircuitRef::Hash(
            symphase_serve::CircuitHash::from_hex(h)
                .ok_or_else(|| fail("--hash must be 64 hex characters"))?,
        ),
        (None, _) => CircuitRef::Text(read_circuit_text(opts)?),
    };
    let request = SampleRequest {
        circuit,
        engine: cfg.engine(),
        source,
        format,
        seed: cfg.seed(),
        start,
        end,
    };
    let mut w = open_out(opts.out.as_deref(), out)?;
    request_sample(addr, &request, &mut *w).map_err(|e| fail_run(e.to_string()))?;
    match w.flush() {
        Ok(()) => Ok(()),
        Err(e) => map_write_err(e, "flushing output"),
    }
}
