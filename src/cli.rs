//! The `symphase` command-line interface.
//!
//! A Stim-like CLI over the circuit text format:
//!
//! ```text
//! symphase sample    -c circuit.stim --shots 1000 [--format 01|counts] [--seed N] [--engine E] [--sampling S] [--par]
//! symphase detect    -c circuit.stim --shots 1000 [--seed N] [--engine E] [--sampling S] [--par]
//! symphase analyze   -c circuit.stim
//! symphase stats     -c circuit.stim
//! symphase dem       -c circuit.stim
//! symphase reference -c circuit.stim
//! symphase gen surface-code --distance 3 --rounds 100000 [--data-error p] [--measure-error p]
//! ```
//!
//! `stats` parses and prints structural statistics only — because
//! `REPEAT` blocks are first-class IR nodes, this is O(file) even for a
//! circuit whose flattened form would hold billions of instructions.
//! `gen` emits the built-in QEC memory workloads (with structured
//! `REPEAT` rounds) as circuit text.
//!
//! `--engine` selects any backend implementing the shared [`Sampler`]
//! trait: `symphase` (default), `symphase-sparse`, `symphase-dense`,
//! `frame`, `tableau`, or `statevec`. `--sampling` pins the SymPhase
//! engines' `M · B` multiplication strategy (`auto` (default), `hybrid`,
//! `sparse`, or `dense` — the blocked Four-Russians kernel); all
//! strategies produce bit-identical samples for equal seeds. `--par`
//! samples across threads with deterministic per-chunk seeding
//! (bit-identical to the serial chunked schedule for the same `--seed`).
//!
//! The logic lives here (rather than in `main`) so the test suite can run
//! commands in-process.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase_backend::{SampleBatch, Sampler};
use symphase_circuit::Circuit;
use symphase_core::{SamplingMethod, SymPhaseSampler};
use symphase_tableau::reference_sample;

use crate::backend::BackendKind;

/// A CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable description.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn fail(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
        code: 2,
    }
}

/// Usage text.
pub const USAGE: &str = "\
usage: symphase <command> [options]

commands:
  sample     sample measurement records        (--shots, --seed, --format, --engine, --par)
  detect     sample detectors and observables  (--shots, --seed, --engine, --par)
  analyze    print circuit statistics and symbolic measurement expressions
  stats      print structural statistics only (O(file), REPEAT never expanded)
  dem        print the detector error model
  reference  print the noiseless reference sample
  gen        emit a generated circuit: surface-code or repetition-code
             (--distance, --rounds, --data-error, --measure-error)

options:
  -c, --circuit <path>   circuit file in the Stim-like text format ('-' = stdin)
      --shots <n>        number of samples (default 10)
      --seed <n>         RNG seed (default 0)
      --format <f>       sample output: 01 (default) or counts
      --engine <e>       backend: symphase (default), symphase-sparse,
                         symphase-dense, frame, tableau, or statevec
      --sampling <s>     M·B strategy for symphase engines: auto (default),
                         hybrid, sparse, or dense (blocked kernel); all
                         strategies sample identical bits for equal seeds
      --par              sample across threads (deterministic per-chunk seeding)
      --distance <d>     gen: code distance (default 3)
      --rounds <r>       gen: stabilizer measurement rounds (default 3)
      --data-error <p>   gen: per-round data noise strength (default 0.001)
      --measure-error <p> gen: pre-measurement flip strength (default 0.001)
";

/// Parsed command-line options.
#[derive(Debug, Default)]
struct Options {
    command: String,
    /// Bare (non-flag) arguments after the command, e.g. the generator
    /// name for `gen`.
    positional: Vec<String>,
    circuit_path: Option<String>,
    shots: usize,
    seed: u64,
    format: String,
    engine: String,
    sampling: String,
    parallel: bool,
    distance: usize,
    rounds: usize,
    data_error: f64,
    measure_error: f64,
}

fn parse_args(args: &[String]) -> Result<Options, CliError> {
    let mut opts = Options {
        shots: 10,
        format: "01".into(),
        engine: "symphase".into(),
        sampling: "auto".into(),
        distance: 3,
        rounds: 3,
        data_error: 0.001,
        measure_error: 0.001,
        ..Options::default()
    };
    let mut it = args.iter();
    opts.command = it.next().cloned().ok_or_else(|| fail(USAGE))?;
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, CliError> {
            it.next()
                .cloned()
                .ok_or_else(|| fail(format!("{name} needs a value")))
        };
        match a.as_str() {
            "-c" | "--circuit" => opts.circuit_path = Some(value("--circuit")?),
            "--shots" => {
                opts.shots = value("--shots")?
                    .parse()
                    .map_err(|_| fail("--shots must be an integer"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| fail("--seed must be an integer"))?;
            }
            "--format" => opts.format = value("--format")?,
            "--engine" => opts.engine = value("--engine")?,
            "--sampling" => opts.sampling = value("--sampling")?,
            "--par" => opts.parallel = true,
            "--distance" => {
                opts.distance = value("--distance")?
                    .parse()
                    .map_err(|_| fail("--distance must be an integer"))?;
            }
            "--rounds" => {
                opts.rounds = value("--rounds")?
                    .parse()
                    .map_err(|_| fail("--rounds must be an integer"))?;
            }
            "--data-error" => {
                opts.data_error = value("--data-error")?
                    .parse()
                    .map_err(|_| fail("--data-error must be a probability"))?;
            }
            "--measure-error" => {
                opts.measure_error = value("--measure-error")?
                    .parse()
                    .map_err(|_| fail("--measure-error must be a probability"))?;
            }
            "-h" | "--help" => {
                return Err(CliError {
                    message: USAGE.into(),
                    code: 0,
                })
            }
            other if !other.starts_with('-') => {
                // Only `gen` takes a bare argument (the generator name);
                // anywhere else a bare token is a mistake (e.g. a value
                // whose flag was dropped) and must not be swallowed.
                if opts.command == "gen" && opts.positional.is_empty() {
                    opts.positional.push(other.to_string());
                } else {
                    return Err(fail(format!("unexpected argument '{other}'\n{USAGE}")));
                }
            }
            other => return Err(fail(format!("unknown option '{other}'\n{USAGE}"))),
        }
    }
    Ok(opts)
}

/// Resolves `--engine` and builds the backend through the shared
/// [`Sampler`] trait.
fn build_backend(opts: &Options, circuit: &Circuit) -> Result<Box<dyn Sampler>, CliError> {
    let kind = BackendKind::from_name(&opts.engine).ok_or_else(|| {
        let names: Vec<&str> = BackendKind::ALL.iter().map(|k| k.name()).collect();
        fail(format!(
            "unknown engine '{}' (expected one of: {})",
            opts.engine,
            names.join(", ")
        ))
    })?;
    if !kind.supports(circuit) {
        return Err(fail(format!(
            "engine '{}' cannot simulate this circuit ({} qubits exceed its limit)",
            kind.name(),
            circuit.num_qubits()
        )));
    }
    let method = SamplingMethod::from_name(&opts.sampling).ok_or_else(|| {
        let names: Vec<&str> = SamplingMethod::ALL.iter().map(|m| m.name()).collect();
        fail(format!(
            "unknown sampling method '{}' (expected one of: {})",
            opts.sampling,
            names.join(", ")
        ))
    })?;
    if method != SamplingMethod::Auto && !kind.supports_sampling_method() {
        return Err(fail(format!(
            "--sampling {} only applies to symphase engines, not '{}'",
            method.name(),
            kind.name()
        )));
    }
    Ok(kind.build_with_sampling(circuit, method))
}

/// Draws a batch honoring `--par` / `--seed`.
fn draw(sampler: &dyn Sampler, opts: &Options) -> SampleBatch {
    if opts.parallel {
        sampler.sample_par(opts.shots, opts.seed)
    } else {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        sampler.sample(opts.shots, &mut rng)
    }
}

fn load_circuit(opts: &Options) -> Result<Circuit, CliError> {
    let path = opts
        .circuit_path
        .as_deref()
        .ok_or_else(|| fail("missing --circuit"))?;
    let text = if path == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| fail(format!("reading stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| fail(format!("reading {path}: {e}")))?
    };
    Circuit::parse(&text).map_err(|e| fail(format!("parse error: {e}")))
}

/// Runs a CLI invocation and returns its stdout content.
///
/// # Errors
///
/// Returns a [`CliError`] with a message and exit code on bad usage, I/O
/// failure, or parse errors.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let opts = parse_args(args)?;
    match opts.command.as_str() {
        "sample" => cmd_sample(&opts),
        "detect" => cmd_detect(&opts),
        "analyze" => cmd_analyze(&opts),
        "stats" => cmd_stats(&opts),
        "dem" => cmd_dem(&opts),
        "reference" => cmd_reference(&opts),
        "gen" => cmd_gen(&opts),
        other => Err(fail(format!("unknown command '{other}'\n{USAGE}"))),
    }
}

fn render_01(samples: &symphase_bitmat::BitMatrix) -> String {
    let mut out = String::with_capacity(samples.cols() * (samples.rows() + 1));
    for shot in 0..samples.cols() {
        for m in 0..samples.rows() {
            out.push(if samples.get(m, shot) { '1' } else { '0' });
        }
        out.push('\n');
    }
    out
}

fn render_counts(samples: &symphase_bitmat::BitMatrix) -> String {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for shot in 0..samples.cols() {
        let key: String = (0..samples.rows())
            .map(|m| if samples.get(m, shot) { '1' } else { '0' })
            .collect();
        *counts.entry(key).or_insert(0) += 1;
    }
    let mut out = String::new();
    for (k, v) in counts {
        let _ = writeln!(out, "{k} {v}");
    }
    out
}

fn cmd_sample(opts: &Options) -> Result<String, CliError> {
    let circuit = load_circuit(opts)?;
    let sampler = build_backend(opts, &circuit)?;
    let samples = draw(sampler.as_ref(), opts).measurements;
    match opts.format.as_str() {
        "01" => Ok(render_01(&samples)),
        "counts" => Ok(render_counts(&samples)),
        other => Err(fail(format!("unknown format '{other}'"))),
    }
}

fn cmd_detect(opts: &Options) -> Result<String, CliError> {
    let circuit = load_circuit(opts)?;
    let sampler = build_backend(opts, &circuit)?;
    let batch = draw(sampler.as_ref(), opts);
    let mut out = String::new();
    for shot in 0..opts.shots {
        for d in 0..batch.detectors.rows() {
            out.push(if batch.detectors.get(d, shot) {
                '1'
            } else {
                '0'
            });
        }
        if batch.observables.rows() > 0 {
            out.push(' ');
            for o in 0..batch.observables.rows() {
                out.push(if batch.observables.get(o, shot) {
                    '1'
                } else {
                    '0'
                });
            }
        }
        out.push('\n');
    }
    Ok(out)
}

fn cmd_analyze(opts: &Options) -> Result<String, CliError> {
    let circuit = load_circuit(opts)?;
    let stats = circuit.stats();
    let sampler = SymPhaseSampler::new(&circuit);
    let mut out = String::new();
    let _ = writeln!(out, "qubits:        {}", circuit.num_qubits());
    let _ = writeln!(out, "gates:         {}", stats.gates);
    let _ = writeln!(out, "measurements:  {}", stats.measurements);
    let _ = writeln!(out, "noise sites:   {}", stats.noise_sites);
    let _ = writeln!(out, "noise symbols: {}", stats.noise_symbols);
    let _ = writeln!(out, "detectors:     {}", circuit.num_detectors());
    let _ = writeln!(out, "observables:   {}", circuit.num_observables());
    let _ = writeln!(out, "coins:         {}", sampler.symbol_table().num_coins());
    let _ = writeln!(out, "\nmeasurement expressions:");
    for (m, e) in sampler.measurement_exprs().iter().enumerate() {
        let _ = writeln!(out, "  m{m} = {e}");
    }
    if sampler.num_detectors() > 0 {
        let _ = writeln!(out, "\ndetector expressions:");
        for d in 0..sampler.num_detectors() {
            let _ = writeln!(out, "  D{d} = {}", sampler.detector_expr(d));
        }
    }
    Ok(out)
}

/// `stats`: parse + structural statistics, no engine initialization.
/// Because statistics are computed from the structured IR (`REPEAT`
/// bodies contribute `count ×` their one-iteration counts), this is
/// O(file) even when the flattened circuit would hold billions of
/// instructions — exactly the workloads the old flatten-on-parse cap
/// (50M instructions) used to reject.
fn cmd_stats(opts: &Options) -> Result<String, CliError> {
    let circuit = load_circuit(opts)?;
    let stats = circuit.stats();
    let mut out = String::new();
    let _ = writeln!(out, "qubits:        {}", circuit.num_qubits());
    let _ = writeln!(
        out,
        "instructions:  {} (structured)",
        circuit.instructions().len()
    );
    let _ = writeln!(out, "gates:         {}", stats.gates);
    let _ = writeln!(out, "measurements:  {}", stats.measurements);
    let _ = writeln!(out, "resets:        {}", stats.resets);
    let _ = writeln!(out, "noise sites:   {}", stats.noise_sites);
    let _ = writeln!(out, "noise symbols: {}", stats.noise_symbols);
    let _ = writeln!(out, "detectors:     {}", circuit.num_detectors());
    let _ = writeln!(out, "observables:   {}", circuit.num_observables());
    let _ = writeln!(out, "feedback ops:  {}", stats.feedback_ops);
    let _ = writeln!(
        out,
        "mean noise p:  {:.6}",
        circuit.mean_noise_probability()
    );
    Ok(out)
}

/// `gen`: emit a built-in QEC memory workload as circuit text (with
/// structured `REPEAT` rounds, so the output file is O(one round)).
fn cmd_gen(opts: &Options) -> Result<String, CliError> {
    use symphase_circuit::generators::{
        repetition_code_memory, surface_code_memory, RepetitionCodeConfig, SurfaceCodeConfig,
    };
    let name = opts
        .positional
        .first()
        .ok_or_else(|| fail("gen needs a generator name: surface-code or repetition-code"))?;
    if opts.rounds == 0 {
        return Err(fail("--rounds must be at least 1"));
    }
    let prob = |flag: &str, p: f64| -> Result<f64, CliError> {
        if (0.0..=1.0).contains(&p) {
            Ok(p)
        } else {
            Err(fail(format!("{flag} must be in [0, 1], got {p}")))
        }
    };
    let data_error = prob("--data-error", opts.data_error)?;
    let measure_error = prob("--measure-error", opts.measure_error)?;
    let circuit = match name.as_str() {
        "surface-code" => {
            if opts.distance < 3 || opts.distance.is_multiple_of(2) {
                return Err(fail("--distance must be odd and at least 3"));
            }
            surface_code_memory(&SurfaceCodeConfig {
                distance: opts.distance,
                rounds: opts.rounds,
                data_error,
                measure_error,
            })
        }
        "repetition-code" => {
            if opts.distance < 2 {
                return Err(fail("--distance must be at least 2"));
            }
            repetition_code_memory(&RepetitionCodeConfig {
                distance: opts.distance,
                rounds: opts.rounds,
                data_error,
                measure_error,
            })
        }
        other => {
            return Err(fail(format!(
                "unknown generator '{other}' (expected surface-code or repetition-code)"
            )))
        }
    };
    Ok(circuit.to_string())
}

fn cmd_dem(opts: &Options) -> Result<String, CliError> {
    let circuit = load_circuit(opts)?;
    let sampler = SymPhaseSampler::new(&circuit);
    Ok(sampler.detector_error_model().to_string())
}

fn cmd_reference(opts: &Options) -> Result<String, CliError> {
    let circuit = load_circuit(opts)?;
    let r = reference_sample(&circuit);
    let mut out: String = (0..r.len())
        .map(|m| if r.get(m) { '1' } else { '0' })
        .collect();
    out.push('\n');
    Ok(out)
}
